// Package engine implements the database instance: the coordinator that
// wires the redo log, buffer cache, transaction manager, checkpoint and
// archiver processes over the physical database, and exposes the DML and
// administration surface the workload and the fault injector drive.
//
// The architecture mirrors Oracle 8i as described in the paper's §2.1:
// LGWR (redo.Manager), DBWR (cache write-back), CKPT (checkpoint process),
// ARCH (archivelog.Archiver), a control file, datafiles in tablespaces,
// and an SGA-style buffer cache.
package engine

import (
	"errors"
	"fmt"
	"sort"

	"dbench/internal/archivelog"
	"dbench/internal/bufcache"
	"dbench/internal/catalog"
	"dbench/internal/monitor"
	"dbench/internal/redo"
	"dbench/internal/sim"
	"dbench/internal/simdisk"
	"dbench/internal/storage"
	"dbench/internal/trace"
	"dbench/internal/txn"
)

// State is the instance lifecycle state.
type State uint8

// Instance states.
const (
	StateDown State = iota + 1
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateDown:
		return "down"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Errors reported by the instance.
var (
	// ErrInstanceDown is returned by DML calls while the instance is not
	// open; clients see it as a lost connection.
	ErrInstanceDown = errors.New("engine: instance down")
	// ErrCrashRecoveryNeeded is returned by Open when the database was
	// not cleanly shut down and has not been recovered.
	ErrCrashRecoveryNeeded = errors.New("engine: crash recovery required")
)

// Stats counts instance activity for the benchmark reports. It is a
// snapshot view over the instance's counter registry.
type Stats struct {
	Checkpoints        int
	SwitchCheckpoints  int
	TimeoutCheckpoints int
	Crashes            int
}

// counters is the engine's own registered counter block; the cache and
// redo blocks register alongside it in the instance registry.
type counters struct {
	checkpoints        *trace.Counter
	switchCheckpoints  *trace.Counter
	timeoutCheckpoints *trace.Counter
	crashes            *trace.Counter
	tsOfflines         *trace.Counter
	tsOnlines          *trace.Counter
	alters             *trace.Counter
}

// Instance is one database server instance plus its database.
type Instance struct {
	k   *sim.Kernel
	fs  *simdisk.FS
	cfg Config

	db    *storage.DB
	cat   *catalog.Catalog
	log   *redo.Manager
	cache *bufcache.Cache
	tm    *txn.Manager
	arch  *archivelog.Archiver
	cpu   *sim.Resource

	state     State
	mounted   bool // instance started (SGA up, control file read), not yet open
	crashed   bool // not cleanly shut down; recovery required before Open
	recovered bool // recovery manager completed instance recovery

	dyn       *DynamicConfig
	ckpt      *ckptProcess
	pmon      *pmonProcess
	mmon      *mmonProcess
	repo      *monitor.Repository
	c         counters
	reg       *trace.Registry
	tr        *trace.Tracer
	openedAt  sim.Time
	downSince sim.Time

	// tsDown records, per tablespace, when it became unavailable to DML
	// (offlined, dropped, or damaged): the start of the localized outage
	// window. Cleared when the tablespace comes back online.
	tsDown map[string]sim.Time

	// lastDDLSCN/lastDDLAt stamp the most recent DDL redo record at the
	// moment it was durably flushed — the instant a destructive DDL takes
	// effect, which the fault injector uses as its atomic
	// (PreFaultSCN, InjectedAt) capture point.
	lastDDLSCN redo.SCN
	lastDDLAt  sim.Time

	// ckptActive is true while the checkpoint procedure is between its
	// start and its control-file update — the window in which a crash
	// leaves a half-drained cache behind.
	ckptActive bool

	// OnStateChange, when set, observes lifecycle transitions (the
	// benchmark driver uses it to timestamp outages).
	OnStateChange func(now sim.Time, s State)
}

// New builds an instance over fs. The database starts empty and down;
// callers create tablespaces/tables (or restore a backup), then Open.
func New(k *sim.Kernel, fs *simdisk.FS, cfg Config) (*Instance, error) {
	db, err := storage.NewDB(fs, cfg.ControlDisk)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	log, err := redo.NewManager(k, fs, cfg.Redo)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	inst := &Instance{
		k:      k,
		fs:     fs,
		cfg:    cfg,
		db:     db,
		cat:    catalog.New(),
		log:    log,
		cache:  bufcache.New(k, cfg.CacheBlocks),
		cpu:    sim.NewResource(cfg.CPUs),
		state:  StateDown,
		tsDown: make(map[string]sim.Time),
	}
	inst.dyn = newDynamicConfig(cfg)
	// One registry per instance: the engine's own counters plus every
	// subsystem block, in construction order. Status() derives its
	// counter fields from here, so a counter added in any subsystem
	// shows up in reports without per-field plumbing.
	inst.reg = trace.NewRegistry()
	inst.tr = cfg.Tracer
	inst.c = counters{
		checkpoints:        inst.reg.Counter("engine.checkpoints"),
		switchCheckpoints:  inst.reg.Counter("engine.switch_checkpoints"),
		timeoutCheckpoints: inst.reg.Counter("engine.timeout_checkpoints"),
		crashes:            inst.reg.Counter("engine.crashes"),
		tsOfflines:         inst.reg.Counter("engine.ts_offlines"),
		tsOnlines:          inst.reg.Counter("engine.ts_onlines"),
		alters:             inst.reg.Counter("engine.alters"),
	}
	inst.reg.Register(inst.cache.Counters()...)
	inst.reg.Register(log.Counters()...)
	inst.cache.Trace = cfg.Tracer
	log.Trace = cfg.Tracer
	inst.cache.FlushLog = func(p *sim.Proc, scn redo.SCN) error {
		if !inst.log.Running() {
			return fmt.Errorf("engine: log writer down")
		}
		return inst.log.WaitFlushed(p, scn)
	}
	inst.cache.FlushableSCN = inst.log.FlushableSCN
	inst.tm = txn.NewManager(k, log, inst.cache, inst.cat, inst.cpu, txn.Config{
		LockTimeout: cfg.Cost.LockTimeout,
		CPUPerOp:    cfg.Cost.CPUPerOp,
	})
	if cfg.Redo.ArchiveMode {
		inst.arch = archivelog.NewArchiver(k, fs, log, cfg.ArchiveDisk)
		inst.arch.Trace = cfg.Tracer
	}
	log.OnSwitch = inst.onLogSwitch
	log.OnFatal = func(err error) { inst.Crash() }
	// The undo floor folds in the flashback retention horizon: group
	// reuse stops at the older of the oldest active transaction and any
	// SCN a logical rewind has pinned (txn.Manager.SetRetention).
	log.UndoFloor = inst.tm.UndoFloor
	inst.tm.OnTxnFinished = log.NotifyUndoFloorChanged
	// A "checkpoint not complete" stall demands a fresh checkpoint: the
	// switch-triggered one can land short of the blocking group's last
	// SCN (a mid-drain re-dirty clamps the position), and waiting for
	// the timer checkpoint would wedge the workload for minutes.
	log.OnCheckpointNeeded = func() {
		if inst.ckpt != nil {
			inst.ckpt.request(reasonSwitch)
		}
	}
	// Monitoring is opt-in: a zero SampleInterval leaves repo nil, and
	// every sampling site is nil-safe at zero cost (same contract as the
	// nil tracer).
	if cfg.SampleInterval > 0 {
		inst.repo = buildRepository(inst)
	}
	return inst, nil
}

// Accessors used by the workload, fault injector, backup and recovery
// layers.

// Kernel returns the simulation kernel.
func (in *Instance) Kernel() *sim.Kernel { return in.k }

// FS returns the simulated file system.
func (in *Instance) FS() *simdisk.FS { return in.fs }

// DB returns the physical database.
func (in *Instance) DB() *storage.DB { return in.db }

// Catalog returns the data dictionary.
func (in *Instance) Catalog() *catalog.Catalog { return in.cat }

// Log returns the redo log manager.
func (in *Instance) Log() *redo.Manager { return in.log }

// Cache returns the buffer cache.
func (in *Instance) Cache() *bufcache.Cache { return in.cache }

// Txns returns the transaction manager.
func (in *Instance) Txns() *txn.Manager { return in.tm }

// CPU returns the instance's CPU slots. Parallel recovery workers charge
// their redo-apply cost through it, so apply concurrency is bounded by
// the configured CPU count just like transaction processing.
func (in *Instance) CPU() *sim.Resource { return in.cpu }

// Archiver returns the ARCH process, or nil when archive mode is off.
func (in *Instance) Archiver() *archivelog.Archiver { return in.arch }

// Config returns the instance configuration.
func (in *Instance) Config() Config { return in.cfg }

// Stats returns a snapshot of the instance counters.
func (in *Instance) Stats() Stats {
	return Stats{
		Checkpoints:        int(in.c.checkpoints.Value()),
		SwitchCheckpoints:  int(in.c.switchCheckpoints.Value()),
		TimeoutCheckpoints: int(in.c.timeoutCheckpoints.Value()),
		Crashes:            int(in.c.crashes.Value()),
	}
}

// Registry returns the instance's counter registry (engine + cache +
// redo counter blocks).
func (in *Instance) Registry() *trace.Registry { return in.reg }

// Tracer returns the instance's event bus (nil when tracing is off;
// a nil tracer accepts and drops events).
func (in *Instance) Tracer() *trace.Tracer { return in.tr }

// Monitor returns the MMON workload repository, nil when monitoring is
// disabled (Config.SampleInterval == 0). A nil repository accepts every
// call as a no-op.
func (in *Instance) Monitor() *monitor.Repository { return in.repo }

// State returns the lifecycle state.
func (in *Instance) State() State { return in.state }

// Crashed reports whether the last stop was unclean (recovery needed).
func (in *Instance) Crashed() bool { return in.crashed }

// MarkRecovered is called by the recovery manager once instance recovery
// has completed, unblocking Open.
func (in *Instance) MarkRecovered() { in.recovered = true }

// DownSince reports when the instance last left the open state.
func (in *Instance) DownSince() sim.Time { return in.downSince }

// TablespaceDownSince reports when the named tablespace became
// unavailable to DML, and whether it currently is. Faults that never
// crash the instance (datafile deletion, tablespace offline/drop) show
// up here rather than in DownSince.
func (in *Instance) TablespaceDownSince(name string) (sim.Time, bool) {
	t, ok := in.tsDown[name]
	return t, ok
}

// markTablespaceDown records the start of a tablespace outage (first
// marking wins: a fault followed by a recovery offline keeps the fault's
// timestamp).
func (in *Instance) markTablespaceDown(name string) {
	if _, ok := in.tsDown[name]; ok {
		return
	}
	in.tsDown[name] = in.k.Now()
	in.c.tsOfflines.Inc()
	in.tr.Instant(in.k.Now(), trace.CatEngine, "engine", "tablespace down", trace.S("ts", name))
}

// clearTablespaceDown ends a tablespace outage window.
func (in *Instance) clearTablespaceDown(name string) {
	if _, ok := in.tsDown[name]; !ok {
		return
	}
	delete(in.tsDown, name)
	in.c.tsOnlines.Inc()
	in.tr.Instant(in.k.Now(), trace.CatEngine, "engine", "tablespace up", trace.S("ts", name))
}

// LastDDL returns the SCN and virtual time at which the most recent DDL
// redo record was durably flushed.
func (in *Instance) LastDDL() (redo.SCN, sim.Time) { return in.lastDDLSCN, in.lastDDLAt }

// Mount starts the instance without opening the database: the SGA is
// allocated, background process slots created and the control file read.
// Recovery runs against a mounted instance; Open completes the startup.
func (in *Instance) Mount(p *sim.Proc) error {
	if in.state == StateOpen {
		return fmt.Errorf("engine: already open")
	}
	if in.mounted {
		return nil
	}
	if in.db.Control.Lost() {
		return storage.ErrControlLost
	}
	span := in.tr.Begin(p.Now(), trace.CatEngine, "engine", "mount")
	p.Sleep(in.cfg.Cost.InstanceStartup)
	// A fresh instance starts with a fresh SGA: drop anything a process
	// racing the previous crash may have smuggled into the cache.
	in.cache.InvalidateAll()
	in.tm.AbandonAll()
	in.mounted = true
	in.tr.End(p.Now(), span)
	return nil
}

// Open starts the instance: charges startup cost (unless already
// mounted), verifies the control file, starts background processes and
// accepts work. A crashed database must be recovered first
// (recovery.InstanceRecovery does this and calls MarkRecovered).
func (in *Instance) Open(p *sim.Proc) error {
	if in.state == StateOpen {
		return nil
	}
	if err := in.Mount(p); err != nil {
		return err
	}
	if in.crashed && !in.recovered {
		return ErrCrashRecoveryNeeded
	}
	in.log.Start()
	if in.arch != nil {
		in.arch.Start()
	}
	in.ckpt = newCkptProcess(in)
	in.ckpt.start()
	in.pmon = newPmon(in)
	in.pmon.start()
	if in.repo != nil {
		in.mmon = newMmon(in)
		in.mmon.start()
	}
	in.crashed = false
	in.recovered = false
	in.state = StateOpen
	in.openedAt = in.k.Now()
	// Mark the control file "in use": a crash leaves this mark behind.
	in.db.Control.StopSCN = -1
	if err := in.db.Control.Update(p); err != nil {
		return err
	}
	in.tr.Instant(p.Now(), trace.CatEngine, "engine", "open",
		trace.I("scn", int64(in.log.NextSCN())))
	// Whole-instance recovery paths (PIT restore) bring tablespaces back
	// without an explicit ALTER ... ONLINE; close their outage windows
	// here. Sorted for deterministic trace/counter order.
	var reopened []string
	for name := range in.tsDown {
		if t, err := in.db.Tablespace(name); err == nil && t.Online() {
			reopened = append(reopened, name)
		}
	}
	sort.Strings(reopened)
	for _, name := range reopened {
		in.clearTablespaceDown(name)
	}
	// Baseline sample at the open instant, so the repository always has a
	// "window start" snapshot even before the first MMON tick.
	in.repo.Sample(in.k.Now())
	if in.OnStateChange != nil {
		in.OnStateChange(in.k.Now(), StateOpen)
	}
	return nil
}

// Crash kills the instance without any cleanup: SHUTDOWN ABORT and fatal
// internal errors land here. The buffer cache and redo buffer vanish;
// in-flight transactions are abandoned to recovery.
func (in *Instance) Crash() {
	if in.state == StateDown {
		return
	}
	// Final sample at the crash instant, before the crash mutates any
	// state: the repository's last sample is exactly the pre-crash
	// picture, which is what the chaos estimator invariant compares the
	// measured recovery against.
	in.repo.Sample(in.k.Now())
	in.state = StateDown
	in.mounted = false
	in.crashed = true
	in.downSince = in.k.Now()
	in.c.crashes.Inc()
	in.tr.Instant(in.k.Now(), trace.CatEngine, "engine", "crash",
		trace.I("scn", int64(in.log.NextSCN())))
	in.log.Stop()
	if in.arch != nil {
		in.arch.Stop()
	}
	if in.ckpt != nil {
		in.ckpt.stop()
	}
	if in.pmon != nil {
		in.pmon.stop()
	}
	if in.mmon != nil {
		in.mmon.stop()
	}
	in.cache.InvalidateAll()
	in.tm.AbandonAll()
	if in.OnStateChange != nil {
		in.OnStateChange(in.k.Now(), StateDown)
	}
}

// ShutdownImmediate closes the instance cleanly: active transactions are
// rolled back, a final checkpoint is taken, and the control file is marked
// clean so the next Open skips recovery.
func (in *Instance) ShutdownImmediate(p *sim.Proc) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	span := in.tr.Begin(p.Now(), trace.CatEngine, "engine", "shutdown immediate")
	defer func() { in.tr.End(p.Now(), span) }()
	if err := in.tm.RollbackAllActive(p); err != nil {
		return fmt.Errorf("engine: shutdown: %w", err)
	}
	if err := in.checkpoint(p); err != nil {
		return fmt.Errorf("engine: shutdown checkpoint: %w", err)
	}
	in.db.Control.StopSCN = in.log.FlushedSCN()
	if err := in.db.Control.Update(p); err != nil {
		return err
	}
	in.state = StateDown
	in.mounted = false
	in.crashed = false
	in.downSince = in.k.Now()
	in.log.Stop()
	if in.arch != nil {
		in.arch.Stop()
	}
	if in.ckpt != nil {
		in.ckpt.stop()
	}
	if in.pmon != nil {
		in.pmon.stop()
	}
	if in.mmon != nil {
		in.mmon.stop()
	}
	in.cache.InvalidateAll() // cache is clean after the checkpoint
	if in.OnStateChange != nil {
		in.OnStateChange(in.k.Now(), StateDown)
	}
	return nil
}

// onLogSwitch runs on the LGWR process at every log switch: it hands the
// switched-out group to the archiver and requests a checkpoint so the
// group can be reused.
func (in *Instance) onLogSwitch(p *sim.Proc, old *redo.Group) {
	if in.arch != nil && in.cfg.Redo.ArchiveMode {
		in.arch.Enqueue(old)
	}
	if in.ckpt != nil {
		in.ckpt.request(reasonSwitch)
	}
}

// RequestCheckpoint asks the CKPT process for an asynchronous checkpoint.
func (in *Instance) RequestCheckpoint() {
	if in.ckpt != nil {
		in.ckpt.request(reasonManual)
	}
}

// CheckpointInProgress reports whether a checkpoint procedure is
// currently executing (between its start and its control-file update).
// The chaos harness uses it to place crashes inside the checkpoint
// window.
func (in *Instance) CheckpointInProgress() bool { return in.ckptActive }

// Checkpoint performs a full synchronous checkpoint on the calling
// process.
func (in *Instance) Checkpoint(p *sim.Proc) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.checkpoint(p)
}

// checkpoint is the core procedure: force the log, drain dirty buffers,
// log the checkpoint record, persist the checkpoint SCN and release log
// groups for reuse.
func (in *Instance) checkpoint(p *sim.Proc) error {
	in.ckptActive = true
	// The deferred reset also runs when the checkpointing process is
	// killed mid-procedure (a kill unwinds the process stack), so the
	// flag never sticks across a crash.
	defer func() { in.ckptActive = false }()
	// Capture the checkpoint position and the undo low-watermark first:
	// all changes at or below scn are covered by the dirty-buffer
	// snapshot written below.
	scn := in.log.NextSCN() - 1
	undoSCN := in.tm.OldestActiveFirstSCN()
	if undoSCN == 0 {
		undoSCN = scn + 1
	}
	span := in.tr.Begin(p.Now(), trace.CatCkpt, "CKPT", "checkpoint")
	written, err := in.cache.Checkpoint(p)
	if err != nil {
		in.tr.End(p.Now(), span, trace.I("written", int64(written)), trace.S("error", err.Error()))
		return err
	}
	// The durable checkpoint position cannot exceed what is flushed:
	// redo beyond FlushedSCN would be lost in a crash, so recovery must
	// still scan from there. (Oracle records the position in the file
	// headers and control file; no redo record is needed, which also
	// keeps checkpoints deadlock-free while the log is stalled.)
	if flushed := in.log.FlushedSCN(); flushed < scn {
		scn = flushed
	}
	// Nor can it reach past a change still only in the cache: buffers the
	// drain left dirty (skipped because their redo was not yet flushable,
	// re-dirtied mid-write, or on an unwritable file) must stay inside
	// the recovery scan.
	if md := in.cache.MinDirtySCN(); md >= 0 && md <= scn {
		scn = md - 1
	}
	if undoSCN > scn+1 {
		undoSCN = scn + 1
	}
	in.db.Control.CheckpointSCN = scn
	in.db.Control.UndoSCN = undoSCN
	for _, f := range in.db.Datafiles() {
		if f.Online() && !f.Lost() {
			f.CkptSCN = scn
			f.UndoSCN = undoSCN
		}
	}
	if err := in.db.Control.Update(p); err != nil {
		// Losing the control file kills the instance.
		in.tr.End(p.Now(), span, trace.I("written", int64(written)), trace.S("error", err.Error()))
		in.Crash()
		return err
	}
	in.log.CheckpointCompleted(scn)
	in.c.checkpoints.Inc()
	// Sample right after the checkpoint lands: the recovery-scan window
	// (and so the live recovery estimate) just shrank, and a crash before
	// the next MMON tick must not be compared against the stale pre-
	// checkpoint estimate. Pure reads — no virtual time is consumed.
	in.repo.Sample(p.Now())
	in.tr.End(p.Now(), span, trace.I("written", int64(written)), trace.I("scn", int64(scn)))
	return nil
}
