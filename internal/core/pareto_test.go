package core

import (
	"strings"
	"testing"
	"time"
)

// tinyParetoScale shrinks the sweep to seconds of wall time: two grid
// configs and a 2.5-minute run with early injection instants.
func tinyParetoScale() Scale {
	sc := QuickScale()
	sc.TPCC.CustomersPerDistrict = 60
	sc.TPCC.Items = 500
	sc.TPCC.TerminalsPerWarehouse = 5
	sc.CacheBlocks = 512
	sc.Duration = 150 * time.Second
	sc.InjectTimes = [3]time.Duration{30 * time.Second, 60 * time.Second, 90 * time.Second}
	sc.Tail = 20 * time.Second
	return sc
}

// TestRunParetoTiny runs the whole sweep on a two-config grid and
// checks the report's structure: every frontier point measured, a
// within-budget best exists (F1G3T1 recovers in ~13 s against a 30 s
// budget), and all three controller scenarios ran — the crash scenarios
// with a measured recovery, the steady one without.
func TestRunParetoTiny(t *testing.T) {
	sc := tinyParetoScale()
	cfg := ParetoConfig{
		Budget: 30 * time.Second,
		Grid:   []RecoveryConfig{mustConfig("F1G3T1"), mustConfig("F100G3T10")},
	}
	rep, err := RunPareto(sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d frontier rows, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.TpmC <= 0 {
			t.Errorf("%s: no throughput measured", row.Config.Name)
		}
		if row.Recovery <= 0 {
			t.Errorf("%s: no recovery measured", row.Config.Name)
		}
	}
	if rep.BestStatic < 0 {
		t.Error("no within-budget static config found (F1G3T1 recovers in ~13s against 30s)")
	} else if !rep.Rows[rep.BestStatic].WithinBudget {
		t.Errorf("best static %s marked outside the budget", rep.Rows[rep.BestStatic].Config.Name)
	}
	if rep.Steady.TpmC <= 0 || rep.Steady.Recovery != 0 {
		t.Errorf("steady scenario: tpmC=%.0f recovery=%v, want fault-free throughput", rep.Steady.TpmC, rep.Steady.Recovery)
	}
	for _, pc := range []ParetoCtl{rep.Crash, rep.Shift} {
		if pc.Recovery <= 0 {
			t.Errorf("%s scenario: no recovery measured", pc.Kind)
		}
		if pc.FinalRung == "" {
			t.Errorf("%s scenario: no final rung reported", pc.Kind)
		}
	}
	if rep.Steady.Infeasible {
		t.Error("30s budget reported infeasible")
	}
	out := FormatPareto(rep)
	for _, want := range []string{"Pareto frontier (budget 30s)", "F1G3T1", "F100G3T10", "Controller:", "steady", "shift", "best within-budget static"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestParetoDefaultsAndValidation pins the config defaulting (nil grid,
// zero budget) and the scale gate.
func TestParetoDefaultsAndValidation(t *testing.T) {
	if got := len(ParetoGrid()); got != 6 {
		t.Errorf("default grid has %d configs, want 6", got)
	}
	bad := tinyParetoScale()
	bad.TPCC.Warehouses = 0
	if _, err := RunPareto(bad, ParetoConfig{}, nil); err == nil {
		t.Error("invalid scale accepted")
	}
}
