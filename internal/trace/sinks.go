package trace

// RingSink keeps the last Cap events in memory (all of them when Cap is
// 0); it is the sink tests assert against.
type RingSink struct {
	Cap     int // maximum retained events; 0 = unbounded
	events  []Event
	head    int // index of oldest event when the ring has wrapped
	wrapped bool
	total   int
}

func (s *RingSink) Emit(ev Event) {
	s.total++
	if s.Cap <= 0 {
		s.events = append(s.events, ev)
		return
	}
	if len(s.events) < s.Cap {
		s.events = append(s.events, ev)
		return
	}
	s.events[s.head] = ev
	s.head = (s.head + 1) % s.Cap
	s.wrapped = true
}

// Events returns retained events in emission order.
func (s *RingSink) Events() []Event {
	if !s.wrapped {
		out := make([]Event, len(s.events))
		copy(out, s.events)
		return out
	}
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.head:]...)
	out = append(out, s.events[:s.head]...)
	return out
}

// Total counts every event ever emitted, including evicted ones.
func (s *RingSink) Total() int { return s.total }

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashSink folds every event into a streaming FNV-1a 64-bit hash. The
// chaos harness hashes the full event stream of a crash point and
// compares reruns: any divergence in emission order, timing, or payload
// changes the sum, making the trace itself a determinism oracle.
type HashSink struct {
	h uint64
	n int
}

func NewHashSink() *HashSink { return &HashSink{h: fnvOffset64} }

func (s *HashSink) byte(b byte) {
	s.h = (s.h ^ uint64(b)) * fnvPrime64
}

func (s *HashSink) uint64s(v uint64) {
	for i := 0; i < 8; i++ {
		s.byte(byte(v >> (8 * i)))
	}
}

func (s *HashSink) str(v string) {
	s.uint64s(uint64(len(v)))
	for i := 0; i < len(v); i++ {
		s.byte(v[i])
	}
}

func (s *HashSink) Emit(ev Event) {
	s.n++
	s.byte(byte(ev.Kind))
	s.byte(byte(ev.Cat))
	s.str(ev.Name)
	s.str(ev.Track)
	s.uint64s(uint64(ev.Start))
	s.uint64s(uint64(ev.Dur))
	s.uint64s(uint64(ev.ID))
	s.uint64s(uint64(ev.Parent))
	s.byte(byte(ev.NAttrs))
	for i := 0; i < ev.NAttrs; i++ {
		a := ev.Attrs[i]
		s.str(a.Key)
		if a.IsStr {
			s.byte(1)
			s.str(a.Str)
		} else {
			s.byte(0)
			s.uint64s(uint64(a.Int))
		}
	}
}

// Sum is the hash of everything emitted so far.
func (s *HashSink) Sum() uint64 { return s.h }

// Count is the number of events hashed.
func (s *HashSink) Count() int { return s.n }
