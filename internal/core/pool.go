package core

import (
	"fmt"
	"runtime"
	"sync"
)

// This file is the campaign executor: every campaign in experiments.go
// first *enumerates* its runs declaratively into a []Spec, then submits
// the list to a pool of workers. Results come back in enumeration order
// regardless of completion order or worker count, so campaign tables are
// bit-identical whether they ran on one core or sixteen. Each Run owns
// its entire simulated platform (kernel, RNG, disks, engine), so runs
// share no mutable state and the pool needs no coordination beyond the
// job queue itself.

// Workers resolves a user-facing parallelism knob to a worker count for
// a campaign of n jobs: 0 (or negative) means one worker per available
// CPU, anything else is used as-is, and the result is clamped to n so a
// small campaign does not spawn idle workers.
func Workers(parallel, n int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel < 1 {
		parallel = 1
	}
	return parallel
}

// RunSpecs executes every spec on a pool of workers and returns the
// results in enumeration order. parallel follows the Workers convention
// (0 = all CPUs, 1 = sequential). Execution is fail-fast: the first Run
// error cancels all queued jobs (in-flight runs complete and are
// discarded) and is returned; the result slice is nil on error.
// Progress, when non-nil, receives one mutex-serialized line per
// completed run, prefixed with a completed/total counter.
func RunSpecs(specs []Spec, parallel int, progress Progress) ([]*Result, error) {
	return runPool(specs, parallel, progress, func(_ int, res *Result) string {
		return res.String()
	})
}

// runPool is RunSpecs with a per-job progress-line formatter: line is
// called with the job's enumeration index and its result, under the
// pool's mutex, as each run completes.
func runPool(specs []Spec, parallel int, progress Progress, line func(i int, res *Result) string) ([]*Result, error) {
	return RunIndexed(len(specs), parallel, func(i int) (*Result, error) {
		return Run(specs[i])
	}, progress, line)
}

// RunIndexed executes jobs 0..n-1 on a pool of workers and returns their
// results in index order. It is the generic core of the campaign
// executor, shared by RunSpecs and by other enumerated campaigns (the
// chaos crash-point explorer fans its points through it). parallel
// follows the Workers convention (0 = all CPUs, 1 = sequential).
// Execution is fail-fast: the first job error cancels all queued jobs
// (in-flight jobs complete and are discarded) and is returned; the
// result slice is nil on error. Progress, when non-nil, receives one
// mutex-serialized line per completed job, prefixed with a
// completed/total counter; jobs must not share mutable state, since up
// to `parallel` of them run concurrently.
func RunIndexed[T any](n, parallel int, run func(i int) (T, error), progress Progress, line func(i int, r T) string) ([]T, error) {
	if n == 0 {
		return nil, nil
	}
	workers := Workers(parallel, n)

	results := make([]T, n)
	jobs := make(chan int)
	done := make(chan struct{})
	var (
		mu        sync.Mutex
		firstErr  error
		completed int
		once      sync.Once
	)
	cancel := func() { once.Do(func() { close(done) }) }

	// The feeder stops handing out queued jobs as soon as any worker
	// fails; workers drain the (then closed) queue and exit.
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				select {
				case <-done:
					return
				default:
				}
				res, err := run(i)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				results[i] = res
				completed++
				if progress != nil && line != nil {
					progress(fmt.Sprintf("[%d/%d] %s", completed, n, line(i, res)))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
