package recovery

import (
	"time"

	"dbench/internal/sim"
	"dbench/internal/trace"
)

// Canonical phase names, in the order a recovery moves through them.
// Not every recovery visits every phase (instance recovery has no
// restore; a fully-online redo range skips archive replay).
const (
	PhaseMount         = "mount"
	PhaseRestore       = "restore"
	PhaseArchiveReplay = "archive replay"
	PhaseRedoReplay    = "redo replay"
	PhaseUndoRollback  = "undo rollback"
	PhaseBlockWrites   = "block writes"
	PhaseOpen          = "open"
)

// PhaseOrder ranks the canonical phases for order assertions.
var PhaseOrder = []string{
	PhaseMount, PhaseRestore, PhaseArchiveReplay, PhaseRedoReplay,
	PhaseUndoRollback, PhaseBlockWrites, PhaseOpen,
}

// Phase is one contiguous step of a recovery's phase timeline.
type Phase struct {
	Name       string
	Start, End sim.Time
	// Scanned/Records/Bytes are the redo records examined, applied, and
	// the applied bytes attributed to this phase.
	Scanned int
	Records int
	Bytes   int64
	// Workers is the apply/IO fan-out active during the phase (1 for
	// coordinator-only phases and all of serial recovery). The phase
	// interval is still the coordinator's contiguous wall-clock slice;
	// worker activity shows up as child spans of the phase span.
	Workers int
}

// Duration returns the phase's elapsed virtual time.
func (ph Phase) Duration() time.Duration { return ph.End.Sub(ph.Start) }

// timeline builds a Report's phase list and mirrors it onto the trace
// bus as a recovery-category span tree (one root span per recovery, one
// child span per phase). Phases are contiguous by construction — each
// opens at the virtual instant the previous closed — so they are
// ordered, non-overlapping, and sum exactly to Finished-Started. A nil
// *timeline is valid and records nothing.
type timeline struct {
	rep  *Report
	tr   *trace.Tracer
	root trace.SpanID
	cur  trace.SpanID
	open bool

	baseScanned int
	baseApplied int
	baseBytes   int64
}

// beginTimeline opens the root recovery span at rep.Started (callers
// construct rep and the timeline at the same virtual instant).
func (m *Manager) beginTimeline(p *sim.Proc, rep *Report) *timeline {
	tl := &timeline{rep: rep, tr: m.in.Tracer()}
	tl.root = tl.tr.Begin(p.Now(), trace.CatRecovery, "recovery", "recovery:"+rep.Kind.String())
	return tl
}

// phase closes the current phase (if any) and opens `name` at p.Now().
func (tl *timeline) phase(p *sim.Proc, name string) {
	if tl == nil {
		return
	}
	tl.closePhase(p)
	tl.rep.Phases = append(tl.rep.Phases, Phase{Name: name, Start: p.Now(), Workers: 1})
	tl.open = true
	tl.baseScanned = tl.rep.RecordsScanned
	tl.baseApplied = tl.rep.RecordsApplied
	tl.baseBytes = tl.rep.BytesApplied
	tl.cur = tl.tr.BeginChild(p.Now(), trace.CatRecovery, "recovery", name, tl.root)
}

// setWorkers records the fan-out active during the open phase.
func (tl *timeline) setWorkers(n int) {
	if tl == nil || !tl.open || n < 1 {
		return
	}
	tl.rep.Phases[len(tl.rep.Phases)-1].Workers = n
}

// currentSpan returns the open phase's span (the parent for worker
// spans), falling back to the root when no phase is open.
func (tl *timeline) currentSpan() trace.SpanID {
	if tl == nil {
		return 0
	}
	if tl.open {
		return tl.cur
	}
	return tl.root
}

// tracer returns the trace bus worker spans are emitted on (nil when the
// timeline itself is nil; the trace package treats a nil tracer as off).
func (tl *timeline) tracer() *trace.Tracer {
	if tl == nil {
		return nil
	}
	return tl.tr
}

func (tl *timeline) closePhase(p *sim.Proc) {
	if tl == nil || !tl.open {
		return
	}
	ph := &tl.rep.Phases[len(tl.rep.Phases)-1]
	ph.End = p.Now()
	ph.Scanned = tl.rep.RecordsScanned - tl.baseScanned
	ph.Records = tl.rep.RecordsApplied - tl.baseApplied
	ph.Bytes = tl.rep.BytesApplied - tl.baseBytes
	tl.tr.End(p.Now(), tl.cur,
		trace.I("records", int64(ph.Records)), trace.I("bytes", ph.Bytes), trace.I("scanned", int64(ph.Scanned)))
	tl.open = false
}

// finish closes the last phase and the root span. Call it after
// rep.Finished is stamped, at the same virtual instant.
func (tl *timeline) finish(p *sim.Proc) {
	if tl == nil {
		return
	}
	tl.closePhase(p)
	tl.tr.End(p.Now(), tl.root,
		trace.I("records", int64(tl.rep.RecordsApplied)),
		trace.I("bytes", tl.rep.BytesApplied),
		trace.I("losers", int64(tl.rep.LosersRolledBack)))
}
