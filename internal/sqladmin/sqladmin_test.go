package sqladmin

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dbench/internal/backup"
	"dbench/internal/engine"
	"dbench/internal/recovery"
	"dbench/internal/sim"
	"dbench/internal/simdisk"
)

type rig struct {
	k   *sim.Kernel
	in  *engine.Instance
	ex  *Executor
	err error
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(3)
	fs := simdisk.NewFS(
		simdisk.DefaultSpec(engine.DiskData1),
		simdisk.DefaultSpec(engine.DiskData2),
		simdisk.DefaultSpec(engine.DiskRedo),
		simdisk.DefaultSpec(engine.DiskArch),
	)
	cfg := engine.DefaultConfig()
	cfg.Redo.GroupSizeBytes = 1 << 20
	cfg.Redo.ArchiveMode = true
	cfg.CheckpointTimeout = 0
	cfg.CacheBlocks = 64
	in, err := engine.New(k, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bk := backup.NewManager(k, fs, engine.DiskArch)
	rm := recovery.NewManager(in, bk)
	return &rig{k: k, in: in, ex: NewExecutor(in, rm, bk)}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	r.k.Go("t", func(p *sim.Proc) {
		if err := fn(p); err != nil {
			r.err = err
		}
	})
	r.k.Run(sim.Time(100 * time.Hour))
	if r.err != nil {
		t.Fatal(r.err)
	}
}

func (r *rig) setup(p *sim.Proc) error {
	if _, err := r.in.CreateTablespace(p, "USERS", []string{engine.DiskData1}, 64); err != nil {
		return err
	}
	if err := r.in.CreateUser(p, "app", "USERS"); err != nil {
		return err
	}
	if err := r.in.Open(p); err != nil {
		return err
	}
	return r.in.CreateTable(p, "t", "app", "USERS", 8)
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		give string
		want []string
	}{
		{"shutdown abort", []string{"SHUTDOWN", "ABORT"}},
		{"ALTER DATABASE DATAFILE 'USERS_01.dbf' OFFLINE;", []string{"ALTER", "DATABASE", "DATAFILE", "USERS_01.dbf", "OFFLINE"}},
		{"  drop   table  orders ", []string{"DROP", "TABLE", "ORDERS"}},
		{"recover database until scn 42", []string{"RECOVER", "DATABASE", "UNTIL", "SCN", "42"}},
	}
	for _, tt := range tests {
		got := tokenize(tt.give)
		if len(got) != len(tt.want) {
			t.Fatalf("tokenize(%q) = %v, want %v", tt.give, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("tokenize(%q) = %v, want %v", tt.give, got, tt.want)
			}
		}
	}
}

func TestShutdownAbortAndStartupRecovers(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		if err := r.setup(p); err != nil {
			return err
		}
		tx, _ := r.in.Begin()
		if err := r.in.Insert(p, tx, "t", 1, []byte("v")); err != nil {
			return err
		}
		if err := r.in.Commit(p, tx); err != nil {
			return err
		}
		if _, err := r.ex.Execute(p, "SHUTDOWN ABORT"); err != nil {
			return err
		}
		if r.in.State() != engine.StateDown {
			return fmt.Errorf("state = %v", r.in.State())
		}
		msg, err := r.ex.Execute(p, "STARTUP")
		if err != nil {
			return err
		}
		if !strings.Contains(msg, "crash recovery") {
			return fmt.Errorf("startup msg = %q", msg)
		}
		tx2, _ := r.in.Begin()
		if _, err := r.in.Read(p, tx2, "t", 1); err != nil {
			return err
		}
		return r.in.Commit(p, tx2)
	})
}

func TestCheckpointAndSwitchStatements(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		if err := r.setup(p); err != nil {
			return err
		}
		if _, err := r.ex.Execute(p, "ALTER SYSTEM CHECKPOINT"); err != nil {
			return err
		}
		if r.in.Stats().Checkpoints == 0 {
			return fmt.Errorf("no checkpoint recorded")
		}
		tx, _ := r.in.Begin()
		_ = r.in.Insert(p, tx, "t", 1, []byte("v"))
		if err := r.in.Commit(p, tx); err != nil {
			return err
		}
		seq := r.in.Log().CurrentGroup().Seq
		if _, err := r.ex.Execute(p, "ALTER SYSTEM SWITCH LOGFILE"); err != nil {
			return err
		}
		if r.in.Log().CurrentGroup().Seq != seq+1 {
			return fmt.Errorf("no switch")
		}
		return nil
	})
}

func TestDatafileOfflineRecoverOnline(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		if err := r.setup(p); err != nil {
			return err
		}
		tx, _ := r.in.Begin()
		_ = r.in.Insert(p, tx, "t", 1, []byte("v"))
		if err := r.in.Commit(p, tx); err != nil {
			return err
		}
		if _, err := r.ex.Execute(p, "ALTER DATABASE DATAFILE 'USERS_01.dbf' OFFLINE"); err != nil {
			return err
		}
		// Direct ONLINE fails (needs recovery); RECOVER then works.
		if _, err := r.ex.Execute(p, "ALTER DATABASE DATAFILE 'USERS_01.dbf' ONLINE"); err == nil {
			return fmt.Errorf("online without recovery succeeded")
		}
		if _, err := r.ex.Execute(p, "RECOVER DATAFILE 'USERS_01.dbf'"); err != nil {
			return err
		}
		tx2, _ := r.in.Begin()
		if _, err := r.in.Read(p, tx2, "t", 1); err != nil {
			return err
		}
		return r.in.Commit(p, tx2)
	})
}

func TestBackupAndPITRStatements(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		if err := r.setup(p); err != nil {
			return err
		}
		for i := int64(0); i < 20; i++ {
			tx, _ := r.in.Begin()
			_ = r.in.Insert(p, tx, "t", i, []byte("v"))
			if err := r.in.Commit(p, tx); err != nil {
				return err
			}
		}
		if _, err := r.ex.Execute(p, "BACKUP DATABASE"); err != nil {
			return err
		}
		target := r.in.Log().NextSCN() - 1
		if _, err := r.ex.Execute(p, "DROP TABLE t"); err != nil {
			return err
		}
		msg, err := r.ex.Execute(p, fmt.Sprintf("RECOVER DATABASE UNTIL SCN %d", target))
		if err != nil {
			return err
		}
		if !strings.Contains(msg, "recovered until") {
			return fmt.Errorf("msg = %q", msg)
		}
		tx, _ := r.in.Begin()
		if _, err := r.in.Read(p, tx, "t", 5); err != nil {
			return err
		}
		return r.in.Commit(p, tx)
	})
}

func TestTablespaceOfflineOnline(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		if err := r.setup(p); err != nil {
			return err
		}
		if _, err := r.ex.Execute(p, "ALTER TABLESPACE USERS OFFLINE"); err != nil {
			return err
		}
		if _, err := r.ex.Execute(p, "ALTER TABLESPACE USERS ONLINE"); err != nil {
			return err
		}
		return nil
	})
}

func TestSyntaxErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		bad := []string{
			"", "FROB", "SHUTDOWN", "SHUTDOWN NOW", "ALTER", "ALTER SYSTEM REBOOT",
			"DROP", "DROP INDEX x", "RECOVER DATABASE UNTIL SCN xyz",
		}
		for _, stmt := range bad {
			if _, err := r.ex.Execute(p, stmt); err == nil {
				return fmt.Errorf("statement %q accepted", stmt)
			} else if stmt != "RECOVER DATABASE UNTIL SCN xyz" && !errors.Is(err, ErrSyntax) {
				return fmt.Errorf("statement %q: err = %v, want ErrSyntax", stmt, err)
			}
		}
		return nil
	})
}

func TestShowStatus(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) error {
		if err := r.setup(p); err != nil {
			return err
		}
		out, err := r.ex.Execute(p, "SHOW STATUS")
		if err != nil {
			return err
		}
		for _, want := range []string{"instance: open", "datafiles:", "redo logs:", "USERS_01.dbf", "CURRENT"} {
			if !strings.Contains(out, want) {
				return fmt.Errorf("status missing %q:\n%s", want, out)
			}
		}
		if _, err := r.ex.Execute(p, "SHOW TABLES"); err == nil {
			return fmt.Errorf("SHOW TABLES accepted")
		}
		return nil
	})
}
