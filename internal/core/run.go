package core

import (
	"fmt"
	"math/rand"
	"time"

	"dbench/internal/backup"
	"dbench/internal/control"
	"dbench/internal/engine"
	"dbench/internal/faults"
	"dbench/internal/metrics"
	"dbench/internal/monitor"
	"dbench/internal/recovery"
	"dbench/internal/redo"
	"dbench/internal/sim"
	"dbench/internal/simdisk"
	"dbench/internal/sqladmin"
	"dbench/internal/standby"
	"dbench/internal/tpcc"
	"dbench/internal/trace"
)

// Spec fully describes one benchmark experiment: the TPC-C workload, the
// recovery configuration under test, and (optionally) one operator fault
// with its injection instant.
type Spec struct {
	// Name labels the experiment in reports.
	Name string
	// Seed drives every random choice, making runs reproducible.
	Seed int64

	// Recovery is the configuration under test (a Table 3 row).
	Recovery RecoveryConfig
	// Archive enables the archive log mechanism (§5.2).
	Archive bool
	// Standby adds a stand-by database fed by archive shipping (§5.3).
	Standby bool

	// Standbys adds a streaming-replication cluster: that many first-tier
	// stand-bys fed by continuous redo streaming (plus ReplCascade
	// cascaded ones), with commit acknowledgement per ReplMode. A primary
	// crash (ShutdownAbort) then fails over to the most advanced stand-by
	// instead of recovering in place. Mutually independent from Standby
	// (the archive-shipping configuration).
	Standbys int
	// ReplMode is the commit-acknowledgement protocol (sync or async).
	ReplMode standby.Mode
	// ReplLink is the primary→stand-by network profile (zero: LinkLAN).
	ReplLink sim.LinkSpec
	// ReplCascade adds that many second-tier stand-bys fed from the
	// first stand-by's reception.
	ReplCascade int
	// ReplicaReads routes this fraction of the read-only TPC-C traffic
	// (Order-Status, Stock-Level) to the first stand-by's snapshot.
	ReplicaReads float64

	// TPCC scales the workload.
	TPCC tpcc.Config
	// CacheBlocks sizes the buffer cache.
	CacheBlocks int
	// Cost is the simulated platform cost model.
	Cost engine.CostModel
	// CPUs sizes the platform's CPU pool serving per-row-op costs
	// (0 = 1, the paper's single-server setup). The scaling experiment
	// grows it with the warehouse count.
	CPUs int
	// DataDisks is the number of data disks (0 = 2, the paper's layout).
	// The tablespaces spread over them; more warehouses want more
	// spindles.
	DataDisks int
	// RecoveryWorkers is the parallel-recovery fan-out threaded into
	// engine.Config.RecoveryParallelism (<=1 = serial, the default).
	// Recovery results are identical for every value; only the recovery
	// time changes.
	RecoveryWorkers int

	// Duration is the measured workload run length (paper: 20 minutes).
	Duration time.Duration
	// Fault, when non-nil, is injected InjectAt after the workload
	// starts; recovery begins after Detection.
	Fault     *faults.Fault
	InjectAt  time.Duration
	Detection time.Duration
	// ForcePhysical disables the flashback remedy for single-table
	// logical faults, forcing the physical point-in-time baseline (the
	// control arm of the logical-vs-physical comparison).
	ForcePhysical bool
	// TailAfterRecovery, when positive, ends the run that long after
	// the recovery completes instead of running the full Duration —
	// recovery-time experiments do not need the remaining workload
	// (performance is measured on fault-free runs).
	TailAfterRecovery time.Duration

	// Tracer, when set, receives this run's instrumentation events
	// (spans and instants on the run's own virtual timebase). At most
	// one spec per campaign should carry a tracer: runs share nothing
	// else, and interleaving several virtual timelines into one sink
	// would be meaningless. Nil disables tracing at zero cost.
	Tracer *trace.Tracer

	// SampleInterval enables the MMON workload repository on this run's
	// instance (engine.Config.SampleInterval); zero disables monitoring
	// at zero cost. Like Tracer, at most one spec per campaign should
	// sample — the repository rides on a single run's virtual timeline.
	SampleInterval time.Duration
	// RepositoryDepth bounds the retained samples (0 = monitor default).
	RepositoryDepth int
	// OnRepository, when set, receives the run's workload repository
	// after the simulation has fully stopped (dbench uses it to export
	// -stats / -awr). Called once per Run, only when sampling is on.
	OnRepository func(*monitor.Repository)

	// Control, when non-nil, attaches the self-tuning controller
	// (internal/control) to the run's instance for the measured phase.
	// Requires SampleInterval > 0 — the repository is the controller's
	// sensor. The controller lands in Result.Control.
	Control *control.Config
	// Phases shapes the offered load over time (tpcc.DriverConfig.Phases);
	// empty = steady full load.
	Phases []tpcc.LoadPhase
	// Script schedules administrative statements at fixed offsets from
	// workload start — the DBA acting mid-run. Statements run in order
	// on one admin session; any error fails the run.
	Script []ScriptedStmt
}

// ScriptedStmt is one scheduled admin statement: Stmt executes At after
// the measured workload starts.
type ScriptedStmt struct {
	At   time.Duration
	Stmt string
}

// DefaultSpec returns a paper-style 20-minute experiment on F100G3T10
// without a fault.
func DefaultSpec() Spec {
	return Spec{
		Name:        "default",
		Seed:        1,
		Recovery:    mustConfig("F100G3T10"),
		TPCC:        tpcc.DefaultConfig(),
		CacheBlocks: 4096,
		Cost:        engine.DefaultCostModel(),
		Duration:    20 * time.Minute,
		Detection:   2 * time.Second,
	}
}

func mustConfig(name string) RecoveryConfig {
	c, ok := ConfigByName(name)
	if !ok {
		panic("core: unknown config " + name)
	}
	return c
}

// Result carries the measures of one experiment: the performance measure
// of TPC-C plus the paper's new dependability measures.
type Result struct {
	Spec Spec

	// TpmC is the New-Order throughput over the full run.
	TpmC float64
	// Series is New-Order throughput in 30-second buckets.
	Series []int
	// Committed counts all committed transactions; Failures the failed
	// attempts observed by terminals.
	Committed int
	Failures  int

	// Outcome describes the fault and its recovery (nil without fault).
	Outcome *faults.Outcome
	// RecoveryTime is the recovery procedure duration (the paper's
	// Tables 4/5 measure; excludes detection).
	RecoveryTime time.Duration
	// UserOutage is the end-user view: from injection to the first
	// successful transaction after it.
	UserOutage time.Duration

	// Availability is the per-warehouse served-fraction over the fault
	// window [InjectedAt, RecoveredAt) (nil without fault): how much of
	// the offered load the database kept serving while recovering. A
	// localized fault keeps the unaffected warehouses near 1.0; a full
	// outage collapses every column to ~0.
	Availability *metrics.Availability

	// LostTransactions counts acknowledged commits whose effects are
	// missing after the experiment (the paper's lost-transaction
	// measure). In a replicated run this is the failover's RPO in
	// transactions.
	LostTransactions int
	// FailedOver reports that the run's remedy was a stand-by promotion;
	// RTOEstimate is the MMON live estimate captured at the promotion
	// decision (compare against RecoveryTime, the measured RTO), and
	// ReplLagRecords how far the promoted stand-by trailed the primary's
	// flushed redo at the crash (the async RPO bound, in records).
	FailedOver     bool
	RTOEstimate    time.Duration
	ReplLagRecords int64
	// Replication is the final V$REPLICATION view (nil without a
	// streaming cluster); ReplicaServed/ReplicaFallback count stand-by-
	// routed read-only transactions.
	Replication     []monitor.ReplicationRow
	ReplicaServed   int64
	ReplicaFallback int64
	// IntegrityViolations lists failed TPC-C consistency conditions.
	IntegrityViolations []tpcc.Violation

	// Checkpoints is the number of completed checkpoints during the
	// run (Table 3's rightmost column).
	Checkpoints int
	// RedoWritten is the volume of redo generated.
	RedoWritten int64
	// LogStalls is time transactions spent waiting for log-group reuse.
	LogStalls time.Duration

	// Repository is the run's MMON workload repository (nil unless
	// Spec.SampleInterval > 0): the sampled metric time-series, rates
	// and live recovery estimates, ready for export.
	Repository *monitor.Repository

	// Control is the run's self-tuning controller (nil unless
	// Spec.Control was set): its decision history and final rung carry
	// the pareto experiment's tracking report.
	Control *control.Controller

	// Diagnostics for calibration and reports.
	DebugLog     *redo.Manager // the primary instance's log (debug access)
	ByType       map[tpcc.TxnType]int
	LockWaits    int64
	LockTimeouts int64
	CacheHitRate float64
	DiskBusy     map[string]time.Duration
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s: tpmC=%.0f ckpts=%d", r.Spec.Name, r.TpmC, r.Checkpoints)
	if r.Outcome != nil {
		s += fmt.Sprintf(" fault=%v recovery=%v outage=%v lost=%d viol=%d",
			r.Outcome.Fault, r.RecoveryTime.Round(time.Second), r.UserOutage.Round(time.Second),
			r.LostTransactions, len(r.IntegrityViolations))
	}
	return s
}

// debugTrace enables phase tracing on stdout (used while calibrating).
var debugTrace = false

// dataDiskNames returns the data disk names for a spec: data1..dataN
// (n = 0 means the paper's two-disk layout, keeping the control file on
// data1 as always).
func dataDiskNames(n int) []string {
	if n < 2 {
		n = 2
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("data%d", i+1)
	}
	return names
}

// diskSpecs builds the platform's disk set: the data disks plus the
// dedicated redo and archive disks.
func diskSpecs(dataDisks []string) []simdisk.DiskSpec {
	specs := make([]simdisk.DiskSpec, 0, len(dataDisks)+2)
	for _, d := range dataDisks {
		specs = append(specs, simdisk.DefaultSpec(d))
	}
	specs = append(specs, simdisk.DefaultSpec(engine.DiskRedo), simdisk.DefaultSpec(engine.DiskArch))
	return specs
}

// Run executes one experiment end to end: build the simulated platform,
// create and load the database, take the reference backup, run TPC-C for
// the configured duration with the optional fault, then collect measures.
//
// Run is safe for concurrent use: every call builds its own sim kernel,
// RNG, disks and engine, and touches no package-level mutable state, so
// campaign runners may execute many Runs in parallel (see pool.go) with
// results identical to sequential execution.
func Run(spec Spec) (*Result, error) {
	k := sim.NewKernel(spec.Seed)
	dataDisks := dataDiskNames(spec.DataDisks)
	fs := simdisk.NewFS(diskSpecs(dataDisks)...)
	ecfg := engine.DefaultConfig()
	ecfg.Redo.GroupSizeBytes = spec.Recovery.FileSize
	ecfg.Redo.Groups = spec.Recovery.Groups
	ecfg.Redo.ArchiveMode = spec.Archive
	ecfg.CheckpointTimeout = spec.Recovery.CheckpointTimeout
	ecfg.CacheBlocks = spec.CacheBlocks
	ecfg.CPUs = spec.CPUs
	ecfg.RecoveryParallelism = spec.RecoveryWorkers
	ecfg.Cost = spec.Cost
	ecfg.Tracer = spec.Tracer
	ecfg.SampleInterval = spec.SampleInterval
	ecfg.RepositoryDepth = spec.RepositoryDepth
	in, err := engine.New(k, fs, ecfg)
	if err != nil {
		return nil, err
	}

	bk := backup.NewManager(k, fs, engine.DiskArch)
	rm := recovery.NewManager(in, bk)
	ex := sqladmin.NewExecutor(in, rm, bk)
	inj := faults.NewInjector(in, rm, ex)
	if spec.Detection > 0 {
		inj.Detection = spec.Detection
	}
	inj.ForcePhysical = spec.ForcePhysical

	app := tpcc.NewApp(in, spec.TPCC)
	dcfg := tpcc.DefaultDriverConfig()
	dcfg.Phases = spec.Phases
	drv := tpcc.NewDriver(app, dcfg)

	res := &Result{Spec: spec}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
		k.Stop()
	}

	trace := func(msg string) {
		if debugTrace {
			fmt.Printf("[%v] %s\n", k.Now(), msg)
		}
	}
	var sb *standby.Standby
	var cluster *standby.Cluster
	recoveryPoint := redo.SCN(-1) // -1: complete recovery, nothing lost
	k.Go("benchmark", func(p *sim.Proc) {
		// Phase 1: create, load, checkpoint, reference backup.
		if err := in.Open(p); err != nil {
			fail(err)
			return
		}
		if err := app.CreateSchema(p, dataDisks); err != nil {
			fail(err)
			return
		}
		if err := app.Load(p, rand.New(rand.NewSource(spec.Seed))); err != nil {
			fail(err)
			return
		}
		if err := in.Checkpoint(p); err != nil {
			fail(err)
			return
		}
		backupSCN := in.DB().Control.CheckpointSCN
		if _, err := bk.TakeFull(p, in.DB(), in.Catalog(), backupSCN); err != nil {
			fail(err)
			return
		}
		if spec.Archive {
			if err := in.ForceLogSwitch(p); err != nil {
				fail(err)
				return
			}
		}

		// Phase 1b: instantiate the stand-by from the same content.
		if spec.Standby {
			sb, err = buildStandby(p, k, ecfg, spec, backupSCN, "standby")
			if err != nil {
				fail(err)
				return
			}
			if err := sb.Start(p); err != nil {
				fail(err)
				return
			}
			in.Archiver().OnArchived = sb.Ship
		}

		// Phase 1c: the streaming-replication cluster — N stand-bys fed
		// by continuous redo streaming, the commit gate, and failover as
		// the ShutdownAbort remedy.
		if spec.Standbys > 0 {
			n := spec.Standbys + spec.ReplCascade
			sbs := make([]*standby.Standby, n)
			for i := range sbs {
				sbs[i], err = buildStandby(p, k, ecfg, spec, backupSCN, fmt.Sprintf("standby%d", i+1))
				if err != nil {
					fail(err)
					return
				}
			}
			link := spec.ReplLink
			if link == (sim.LinkSpec{}) {
				link = LinkLAN
			}
			cluster, err = standby.NewCluster(in, sbs, standby.ClusterConfig{
				Mode:    spec.ReplMode,
				Link:    link,
				Cascade: spec.ReplCascade,
			})
			if err != nil {
				fail(err)
				return
			}
			if err := cluster.Start(p); err != nil {
				fail(err)
				return
			}
			in.Log().OnDurable = cluster.OnDurable
			in.Txns().CommitGate = cluster.CommitGate
			prevState := in.OnStateChange
			in.OnStateChange = func(now sim.Time, st engine.State) {
				if prevState != nil {
					prevState(now, st)
				}
				cluster.OnPrimaryState(now, st)
			}
			inj.Failover = cluster
			cluster.RegisterProbes(in.Monitor())
			if spec.ReplicaReads > 0 {
				app.Replica = ReplicaOf(cluster.Standbys()[0])
				app.ReplicaShare = spec.ReplicaReads
			}
		}

		trace("setup done")
		// Phase 2: measured run.
		if spec.Control != nil {
			ctl, err := control.New(in, *spec.Control)
			if err != nil {
				fail(err)
				return
			}
			ctl.Start()
			res.Control = ctl
		}
		start := p.Now()
		ckptBase := in.Stats().Checkpoints
		drv.Start()
		if len(spec.Script) > 0 {
			script := spec.Script
			k.Go("DBA-script", func(sp *sim.Proc) {
				for _, s := range script {
					if at := start.Add(s.At); at > sp.Now() {
						sp.Sleep(at.Sub(sp.Now()))
					}
					if _, err := ex.Execute(sp, s.Stmt); err != nil {
						fail(fmt.Errorf("core: script %q: %w", s.Stmt, err))
						return
					}
				}
			})
		}

		if spec.Fault != nil {
			p.Sleep(spec.InjectAt)
			trace("injecting")
			o, err := inj.Inject(p, *spec.Fault)
			if err != nil {
				fail(err)
				return
			}
			res.Outcome = o
			if spec.Standby && *spec.Fault == (faults.Fault{Kind: faults.ShutdownAbort}) {
				// Fail over to the stand-by instead of recovering
				// the primary.
				p.Sleep(inj.Detection)
				o.DetectedAt = p.Now()
				if _, err := sb.Activate(p); err != nil {
					fail(err)
					return
				}
				recoveryPoint = sb.AppliedSCN()
				app.In = sb.Instance()
				o.RecoveredAt = p.Now()
			} else {
				if err := inj.Recover(p, o); err != nil {
					fail(err)
					return
				}
				switch {
				case o.FailedOver:
					// The cluster promoted a stand-by: the new
					// incarnation starts at the promoted watermark,
					// acknowledged commits beyond it are the RPO, and
					// the drivers re-target the new primary.
					recoveryPoint = cluster.PromotedSCN()
					app.In = cluster.ActiveInstance()
					app.Replica = nil
					res.FailedOver = true
					res.RTOEstimate = cluster.LastRTOEstimate()
					res.ReplLagRecords = cluster.PromotedLag()
				case o.Report != nil && !o.Report.Complete:
					recoveryPoint = o.PreFaultSCN
				}
			}
			res.RecoveryTime = o.RecoveryDuration()
		}

		trace("tail")
		rest := spec.Duration - p.Now().Sub(start)
		if spec.Fault != nil && spec.TailAfterRecovery > 0 && rest > spec.TailAfterRecovery {
			rest = spec.TailAfterRecovery
		}
		if rest > 0 {
			p.Sleep(rest)
		}
		trace("quiesce")
		drv.Quiesce(p)
		trace("quiesced")
		end := p.Now()
		if full := start.Add(spec.Duration); end > full {
			end = full
		}

		// Phase 3: measures.
		res.TpmC = drv.TpmC(start, end)
		res.Series = drv.ThroughputSeries(start, end, 30*time.Second)
		res.Committed = drv.CountCommitted(0)
		res.Failures = len(drv.Failures())
		res.Checkpoints = in.Stats().Checkpoints - ckptBase
		res.RedoWritten = in.Log().Stats().FlushedBytes
		res.LogStalls = in.Log().Stats().StallTime
		res.DebugLog = in.Log()
		res.Repository = in.Monitor()
		res.ByType = make(map[tpcc.TxnType]int)
		for _, c := range drv.Commits() {
			res.ByType[c.Type]++
		}
		ts := in.Txns().Stats()
		res.LockWaits, res.LockTimeouts = ts.LockWaits, ts.LockTimeouts
		cs := in.Cache().Stats()
		if cs.Hits+cs.Misses > 0 {
			res.CacheHitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		}
		res.DiskBusy = make(map[string]time.Duration)
		for _, d := range fs.DiskNames() {
			res.DiskBusy[d] = fs.Disk(d).BusyTotal()
		}
		if res.Outcome != nil {
			if back, ok := drv.FirstCommitAfter(res.Outcome.InjectedAt); ok {
				res.UserOutage = back.Sub(res.Outcome.InjectedAt)
			} else {
				res.UserOutage = end.Sub(res.Outcome.InjectedAt)
			}
			availEnd := res.Outcome.RecoveredAt
			if availEnd <= res.Outcome.InjectedAt {
				availEnd = end
			}
			res.Availability = drv.Availability(res.Outcome.InjectedAt, availEnd)
		}
		// Lost transactions from the end-user view: with an incomplete
		// recovery point, count acknowledged commits beyond it (row
		// probing is defeated by order-id reuse after the rollback);
		// otherwise probe every acknowledged order row.
		if recoveryPoint >= 0 {
			// Only commits acknowledged before the recovery started
			// can be lost; later SCNs belong to the new incarnation.
			for _, c := range drv.Commits() {
				if c.SCN > recoveryPoint && c.At <= res.Outcome.DetectedAt {
					res.LostTransactions++
				}
			}
			// The recovery report counts lost commits from the redo
			// stream itself (including the instants between detection
			// and shutdown); take the authoritative larger figure.
			if rep := res.Outcome.Report; rep != nil && rep.LostCommits > res.LostTransactions {
				res.LostTransactions = rep.LostCommits
			}
		} else {
			lost, err := drv.VerifyDurability(p)
			if err != nil {
				fail(fmt.Errorf("core: durability check: %w", err))
				return
			}
			res.LostTransactions = len(lost)
		}
		if cluster != nil {
			res.Replication = cluster.VReplication()
			res.ReplicaServed = app.ReplicaServed
			res.ReplicaFallback = app.ReplicaFallback
		}
		viols, err := app.CheckConsistency(p)
		if err != nil {
			fail(fmt.Errorf("core: consistency check: %w", err))
			return
		}
		res.IntegrityViolations = viols
		k.Stop()
	})
	k.Run(sim.Time(200 * time.Hour))
	// Tear the simulation down completely: blocked background processes
	// (LGWR waiting for work, PMON sleeping, stand-by MRP, ...) would
	// otherwise leak their goroutines and keep the whole run's state
	// reachable — across a campaign of dozens of runs that is an OOM.
	k.KillAll()
	if runErr != nil {
		return nil, fmt.Errorf("core: run %q: %w", spec.Name, runErr)
	}
	if spec.OnRepository != nil && res.Repository != nil {
		spec.OnRepository(res.Repository)
	}
	return res, nil
}

// buildStandby creates one stand-by server: its own simulated machine
// with an identical schema and data content (the standard "instantiate
// from a backup of the primary" procedure, reproduced by re-running the
// deterministic load), left mounted in managed recovery from startSCN.
func buildStandby(p *sim.Proc, k *sim.Kernel, ecfg engine.Config, spec Spec, startSCN redo.SCN, name string) (*standby.Standby, error) {
	dataDisks := dataDiskNames(spec.DataDisks)
	sbFS := simdisk.NewFS(diskSpecs(dataDisks)...)
	sbCfg := ecfg
	sbCfg.Name = name
	// The stand-by shares the primary's kernel but is a second database:
	// its events would interleave with the primary's on the same tracks,
	// so only the primary is traced.
	sbCfg.Tracer = nil
	sbIn, err := engine.New(k, sbFS, sbCfg)
	if err != nil {
		return nil, fmt.Errorf("core: standby: %w", err)
	}
	sbApp := tpcc.NewApp(sbIn, spec.TPCC)
	if err := sbApp.CreateSchema(p, dataDisks); err != nil {
		return nil, fmt.Errorf("core: standby schema: %w", err)
	}
	if err := sbApp.Load(p, rand.New(rand.NewSource(spec.Seed))); err != nil {
		return nil, fmt.Errorf("core: standby load: %w", err)
	}
	return standby.New(sbIn, standby.DefaultConfig(), startSCN), nil
}
