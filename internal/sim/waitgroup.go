package sim

// WaitGroup lets a simulated process wait for a set of other processes (or
// operations) to finish, analogous to sync.WaitGroup but in virtual time.
type WaitGroup struct {
	count int
	cond  Cond
}

// Add increments the outstanding-operation count by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done marks one operation complete, waking waiters when the count reaches
// zero. k is the kernel to schedule wakeups on.
func (wg *WaitGroup) Done(k *Kernel) {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if wg.count == 0 {
		wg.cond.Broadcast(k)
	}
}

// Wait blocks p until the count reaches zero. A zero count returns
// immediately.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.cond.Wait(p)
	}
}
