package txn

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"dbench/internal/bufcache"
	"dbench/internal/redo"
	"dbench/internal/sim"
	"dbench/internal/storage"
)

// TestStressStripedLocksTwoWarehouses drives concurrent terminals against
// two warehouses through a warehouse-partitioned table, at several lock
// stripe counts. Each terminal increments a private per-warehouse counter
// and a hot per-warehouse row; every third round is a cross-warehouse
// transaction touching both hot rows in ascending warehouse order (the
// same ordered-acquisition discipline the TPC-C transactions use). The
// test pins two properties of the striped lock table:
//
//   - deadlock freedom: zero lock timeouts despite real contention
//     (asserted non-vacuous via the wait counter);
//   - no lost updates: every counter lands on its exact expected value,
//     so a grant or release leaking to the wrong stripe would show up.
func TestStressStripedLocksTwoWarehouses(t *testing.T) {
	const (
		warehouses = 2
		terminals  = 4
		rounds     = 30
		partDiv    = 100 // keys are w*partDiv + slot
		hotSlot    = 50
	)
	enc := func(v int64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, uint64(v))
		return b
	}
	dec := func(b []byte) int64 { return int64(binary.BigEndian.Uint64(b)) }
	key := func(w, slot int) int64 { return int64(w*partDiv + slot) }

	cases := []struct {
		name    string
		stripes int
	}{
		{"1stripe", 1}, // degenerate: everything funnels through one map
		{"2stripes", 2},
		{"8stripes", 8}, // default; more stripes than partitions
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := makeFixture()
			if err != nil {
				t.Fatal(err)
			}
			defer f.shutdown()
			ts, err := f.db.CreateTablespace("WH", []string{"data"}, 64)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := f.cat.CreateTablePartitioned("wh", "bank", []*storage.Tablespace{ts, ts}, 16, 4, partDiv)
			if err != nil {
				t.Fatal(err)
			}
			if got := tbl.Partitions(); got != warehouses {
				t.Fatalf("partitions = %d, want %d", got, warehouses)
			}
			// Tiny cache: every read can miss and yield, interleaving the
			// terminals mid-transaction so contention is real.
			f.c = bufcache.New(f.k, 2)
			f.c.FlushLog = func(p *sim.Proc, scn redo.SCN) error { return f.log.WaitFlushed(p, scn) }
			f.m = NewManager(f.k, f.log, f.c, f.cat, nil, Config{LockTimeout: 2 * time.Second, LockStripes: tc.stripes})

			// The stripe routing itself: with >= 2 stripes the two
			// warehouses' rows must land on different stripes.
			s1 := f.m.locks.stripeFor("wh", key(1, hotSlot))
			s2 := f.m.locks.stripeFor("wh", key(2, hotSlot))
			if tc.stripes >= warehouses && s1 == s2 {
				t.Fatalf("stripes=%d but both warehouses map to stripe %d", tc.stripes, s1)
			}
			if tc.stripes == 1 && (s1 != 0 || s2 != 0) {
				t.Fatalf("single stripe but got %d/%d", s1, s2)
			}

			f.k.Go("setup", func(p *sim.Proc) {
				tx := f.m.Begin()
				for w := 1; w <= warehouses; w++ {
					for term := 1; term <= terminals; term++ {
						if err := f.m.Insert(p, tx, "wh", key(w, term), enc(0)); err != nil {
							t.Error(err)
						}
					}
					if err := f.m.Insert(p, tx, "wh", key(w, hotSlot), enc(0)); err != nil {
						t.Error(err)
					}
				}
				if err := f.m.Commit(p, tx); err != nil {
					t.Error(err)
				}
				for w := 1; w <= warehouses; w++ {
					for term := 1; term <= terminals; term++ {
						w, term := w, term
						f.k.Go(fmt.Sprintf("term-%d-%d", w, term), func(p *sim.Proc) {
							bump := func(p *sim.Proc, tx *Txn, k int64) error {
								v, err := f.m.ReadForUpdate(p, tx, "wh", k)
								if err != nil {
									return err
								}
								return f.m.Update(p, tx, "wh", k, enc(dec(v)+1))
							}
							for i := 0; i < rounds; i++ {
								tx := f.m.Begin()
								err := bump(p, tx, key(w, term))
								if err == nil {
									if i%3 == 0 {
										// Cross-warehouse: both hot rows,
										// ascending warehouse order.
										for hw := 1; hw <= warehouses; hw++ {
											if err = bump(p, tx, key(hw, hotSlot)); err != nil {
												break
											}
										}
									} else {
										err = bump(p, tx, key(w, hotSlot))
									}
								}
								if err != nil {
									t.Errorf("term %d/%d round %d: %v", w, term, i, err)
									_ = f.m.Rollback(p, tx)
									return
								}
								if err := f.m.Commit(p, tx); err != nil {
									t.Errorf("term %d/%d commit: %v", w, term, err)
									return
								}
							}
						})
					}
				}
			})
			f.k.Run(sim.Time(50 * time.Hour))

			// Every third round hits both hot rows, the rest only the home
			// one: hot(w) = home rounds + cross rounds from ALL terminals.
			crossPerTerm := 0
			for i := 0; i < rounds; i++ {
				if i%3 == 0 {
					crossPerTerm++
				}
			}
			wantHot := int64(terminals*rounds + (warehouses-1)*terminals*crossPerTerm)
			f.k.Go("check", func(p *sim.Proc) {
				tx := f.m.Begin()
				for w := 1; w <= warehouses; w++ {
					for term := 1; term <= terminals; term++ {
						v, err := f.m.Read(p, tx, "wh", key(w, term))
						if err != nil {
							t.Error(err)
							continue
						}
						if got := dec(v); got != rounds {
							t.Errorf("counter %d/%d = %d, want %d (lost updates)", w, term, got, rounds)
						}
					}
					v, err := f.m.Read(p, tx, "wh", key(w, hotSlot))
					if err != nil {
						t.Error(err)
						continue
					}
					if got := dec(v); got != wantHot {
						t.Errorf("hot row %d = %d, want %d (lost updates)", w, got, wantHot)
					}
				}
				_ = f.m.Commit(p, tx)
			})
			f.k.Run(sim.Time(100 * time.Hour))

			st := f.m.Stats()
			if st.LockTimeouts != 0 {
				t.Fatalf("%d lock timeouts: striped table is not deadlock-free under this load", st.LockTimeouts)
			}
			if st.LockWaits == 0 {
				t.Fatal("no lock waits at all; the load did not produce contention")
			}
			t.Logf("stripes=%d waits=%d timeouts=%d", tc.stripes, st.LockWaits, st.LockTimeouts)
		})
	}
}
