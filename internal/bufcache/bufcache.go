// Package bufcache implements the database buffer cache: an LRU cache of
// data blocks with dirty tracking, demand paging charged to the simulated
// disks, and checkpoint draining.
//
// Checkpoint cost — reading the dirty list and forcing it to the datafiles
// — is the central performance/recovery trade-off the paper studies: the
// more often the cache is drained, the less redo crash recovery must
// replay, but the more disk bandwidth the foreground workload loses.
//
// The cache is sharded: each shard owns its own buffer map, LRU list and
// dirty list, sized so a multi-warehouse working set does not funnel every
// lookup through one LRU and — more importantly — so DBWR/CKPT walk only
// per-shard dirty lists instead of scanning every resident buffer. Shard
// placement mixes the datafile's stable ShardHint with the block number,
// so it is deterministic across runs and identical for every worker count.
package bufcache

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"time"

	"dbench/internal/redo"
	"dbench/internal/sim"
	"dbench/internal/storage"
	"dbench/internal/trace"
)

// ErrNoEvictable reports that every buffer is dirty and unwritable, so a
// miss cannot be served.
var ErrNoEvictable = errors.New("bufcache: no evictable buffer")

type bufKey struct {
	file *storage.Datafile
	no   int
}

type buffer struct {
	ref   storage.BlockRef
	block *storage.Block

	dirty bool
	// firstDirtySCN is the SCN of the earliest unflushed change in the
	// buffer; recovery must start no later than the minimum over all
	// dirty buffers.
	firstDirtySCN redo.SCN

	elem *list.Element
}

// shard is one independently evictable slice of the cache: its own
// residency map, LRU order, and dirty list.
type shard struct {
	capacity int
	buffers  map[bufKey]*buffer
	lru      *list.List // front = most recently used
	dirty    map[bufKey]*buffer
}

func newShard(capacity int) *shard {
	return &shard{
		capacity: capacity,
		buffers:  make(map[bufKey]*buffer, capacity),
		lru:      list.New(),
		dirty:    make(map[bufKey]*buffer),
	}
}

// Stats counts cache activity for the benchmark reports. It is a
// snapshot view over the cache's registered counters (see Counters).
type Stats struct {
	Hits             int64
	Misses           int64
	Evictions        int64
	DirtyEvictWrites int64
	CheckpointWrites int64
	SkippedWrites    int64
	UnflushedSkips   int64
}

// counters is the cache's registered counter block; one counter per
// Stats field, named "cache.<snake_case_field>".
type counters struct {
	hits             *trace.Counter
	misses           *trace.Counter
	evictions        *trace.Counter
	dirtyEvictWrites *trace.Counter
	checkpointWrites *trace.Counter
	skippedWrites    *trace.Counter
	unflushedSkips   *trace.Counter
}

func newCounters() counters {
	return counters{
		hits:             trace.NewCounter("cache.hits"),
		misses:           trace.NewCounter("cache.misses"),
		evictions:        trace.NewCounter("cache.evictions"),
		dirtyEvictWrites: trace.NewCounter("cache.dirty_evict_writes"),
		checkpointWrites: trace.NewCounter("cache.checkpoint_writes"),
		skippedWrites:    trace.NewCounter("cache.skipped_writes"),
		unflushedSkips:   trace.NewCounter("cache.unflushed_skips"),
	}
}

// Cache is the database buffer cache. It is used only from simulation
// processes, so it needs no locking.
type Cache struct {
	k        *sim.Kernel
	capacity int

	shards []*shard
	mask   uint32
	nDirty int

	// FlushLog, when set, is called before any dirty block is written
	// to disk, with the block's last-change SCN. It enforces the
	// write-ahead rule: redo for a change must be durable before the
	// changed block is.
	FlushLog func(p *sim.Proc, scn redo.SCN) error

	// FlushableSCN, when set, reports the horizon the log writer can
	// reach without waiting on an unreleased group. Checkpoint skips
	// buffers whose newest change lies beyond it rather than waiting:
	// the log writer may be stalled on a "checkpoint not complete"
	// group switch that only this checkpoint's completion can release,
	// so waiting would deadlock. Skipped buffers stay dirty and bound
	// the checkpoint position through MinDirtySCN.
	FlushableSCN func() redo.SCN

	// Trace, when set, receives dbwr-category events (evict writes,
	// write-ahead forces, checkpoint skips). A nil tracer is valid.
	Trace *trace.Tracer

	c counters
}

// minShardCapacity is the smallest per-shard buffer count worth splitting
// for: below it, sharding a tiny cache would just multiply eviction
// pressure. Small caches therefore get a single shard (preserving the
// exact LRU semantics the eviction tests pin down).
const minShardCapacity = 256

// maxShards bounds the shard fan-out.
const maxShards = 16

// shardCountFor picks a power-of-two shard count such that every shard
// keeps at least minShardCapacity buffers.
func shardCountFor(capacity int) int {
	n := 1
	for n < maxShards && capacity/(n*2) >= minShardCapacity {
		n *= 2
	}
	return n
}

// New returns a cache holding at most capacity blocks, sharded
// automatically by size.
func New(k *sim.Kernel, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return NewSharded(k, capacity, shardCountFor(capacity))
}

// NewSharded returns a cache with an explicit shard count (rounded up to a
// power of two, capped so every shard holds at least one block).
func NewSharded(k *sim.Kernel, capacity, shards int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards && pow < maxShards {
		pow *= 2
	}
	for pow > capacity {
		pow /= 2
	}
	c := &Cache{
		k:        k,
		capacity: capacity,
		mask:     uint32(pow - 1),
		c:        newCounters(),
	}
	base, extra := capacity/pow, capacity%pow
	for i := 0; i < pow; i++ {
		cap := base
		if i < extra {
			cap++
		}
		c.shards = append(c.shards, newShard(cap))
	}
	return c
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor maps a block to its home shard: the shared block routing hash
// (storage.BlockRef.Route — the datafile's creation-time hash mixed with
// the block number), masked to the power-of-two shard count.
func (c *Cache) shardFor(key bufKey) *shard {
	return c.shards[storage.BlockRef{File: key.file, No: key.no}.Route()&c.mask]
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.c.hits.Value(),
		Misses:           c.c.misses.Value(),
		Evictions:        c.c.evictions.Value(),
		DirtyEvictWrites: c.c.dirtyEvictWrites.Value(),
		CheckpointWrites: c.c.checkpointWrites.Value(),
		SkippedWrites:    c.c.skippedWrites.Value(),
		UnflushedSkips:   c.c.unflushedSkips.Value(),
	}
}

// Counters exposes the cache's counters for the instance registry.
func (c *Cache) Counters() []*trace.Counter {
	return []*trace.Counter{
		c.c.hits, c.c.misses, c.c.evictions, c.c.dirtyEvictWrites,
		c.c.checkpointWrites, c.c.skippedWrites, c.c.unflushedSkips,
	}
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		n += len(s.buffers)
	}
	return n
}

// DirtyCount returns the number of dirty buffers.
func (c *Cache) DirtyCount() int { return c.nDirty }

// setClean marks a resident buffer clean and removes it from its shard's
// dirty list.
func (c *Cache) setClean(s *shard, key bufKey, b *buffer) {
	b.dirty = false
	delete(s.dirty, key)
	c.nDirty--
}

// Get returns the cached block for ref, reading it from disk on a miss
// (charged to the datafile's disk). The returned block is the cache's own
// copy: callers that mutate it must call MarkDirty before yielding.
func (c *Cache) Get(p *sim.Proc, ref storage.BlockRef) (*storage.Block, error) {
	key := bufKey{file: ref.File, no: ref.No}
	s := c.shardFor(key)
	if b, ok := s.buffers[key]; ok {
		c.c.hits.Inc()
		s.lru.MoveToFront(b.elem)
		return b.block, nil
	}
	c.c.misses.Inc()
	for len(s.buffers) >= s.capacity {
		if err := c.evictOne(p, s); err != nil {
			return nil, err
		}
	}
	blk, err := ref.File.ReadBlock(p, ref.No)
	if err != nil {
		return nil, fmt.Errorf("bufcache: miss read: %w", err)
	}
	// The disk read yielded: another process may have loaded the block
	// meanwhile. Use the resident buffer in that case — two live copies
	// of one block would lose whichever's updates are written last.
	if b, ok := s.buffers[key]; ok {
		s.lru.MoveToFront(b.elem)
		return b.block, nil
	}
	b := &buffer{ref: ref, block: blk}
	b.elem = s.lru.PushFront(b)
	s.buffers[key] = b
	return b.block, nil
}

// Peek returns the cached block without promotion or I/O; ok reports a hit.
func (c *Cache) Peek(ref storage.BlockRef) (*storage.Block, bool) {
	key := bufKey{file: ref.File, no: ref.No}
	b, ok := c.shardFor(key).buffers[key]
	if !ok {
		return nil, false
	}
	return b.block, true
}

// MarkDirty records that the block for ref was modified at scn. The block
// must be resident (callers mutate the pointer returned by Get).
func (c *Cache) MarkDirty(ref storage.BlockRef, scn redo.SCN) {
	key := bufKey{file: ref.File, no: ref.No}
	s := c.shardFor(key)
	b, ok := s.buffers[key]
	if !ok {
		panic(fmt.Sprintf("bufcache: MarkDirty on non-resident block %v", ref))
	}
	if !b.dirty {
		b.dirty = true
		b.firstDirtySCN = scn
		s.dirty[key] = b
		c.nDirty++
	}
	b.block.SCN = scn
}

// evictOne makes room for one buffer in shard s: it writes out and drops
// the least recently used evictable buffer. When concurrent processes race
// for the same victims it retries (bounded), waiting a beat for their
// writes to finish; ErrNoEvictable is returned only when every buffer is
// dirty on an unwritable file.
func (c *Cache) evictOne(p *sim.Proc, s *shard) error {
	for attempt := 0; attempt < 64; attempt++ {
		if len(s.buffers) < s.capacity {
			return nil // concurrent evictions made room
		}
		yielded, evicted, err := c.tryEvict(p, s)
		if err != nil {
			return err
		}
		if evicted {
			return nil
		}
		if !yielded {
			// The pass observed a stable shard with nothing
			// evictable: give up.
			return ErrNoEvictable
		}
		// Other processes are mid-eviction; let them finish.
		p.Sleep(time.Millisecond)
	}
	return ErrNoEvictable
}

// tryEvict runs one eviction pass over a snapshot of the shard's LRU
// order. It reports whether the pass yielded control (so the cache may
// have changed) and whether a buffer was evicted.
func (c *Cache) tryEvict(p *sim.Proc, s *shard) (yielded, evicted bool, err error) {
	var candidates []*buffer
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		candidates = append(candidates, e.Value.(*buffer))
	}
	for _, b := range candidates {
		key := bufKey{file: b.ref.File, no: b.ref.No}
		if s.buffers[key] != b {
			continue // evicted by a concurrent process meanwhile
		}
		if b.dirty {
			// Snapshot the block BEFORE forcing the log: both the flush
			// wait and the disk write below yield, and a concurrent
			// transaction may modify the buffer meanwhile. Writing the
			// live pointer would persist that newer, possibly unflushed
			// change — a write-ahead violation that leaves an
			// unrecoverable half-transaction on disk after a crash.
			img := b.block.Clone()
			if ferr := c.forceLog(p, img.SCN); ferr != nil {
				return yielded, false, ferr
			}
			yielded = true
			if s.buffers[key] != b {
				continue // gone while we forced the log
			}
			if !b.dirty {
				// Cleaned concurrently (checkpoint): drop without
				// a write below.
			} else if werr := b.ref.File.WriteBlock(p, b.ref.No, img); werr != nil {
				continue // unwritable: try an older buffer
			} else {
				c.c.dirtyEvictWrites.Inc()
				c.Trace.Instant(p.Now(), trace.CatDBWR, "DBWR", "evict write",
					trace.S("file", b.ref.File.Name), trace.I("block", int64(b.ref.No)), trace.I("scn", int64(img.SCN)))
				if b.block.SCN == img.SCN {
					c.setClean(s, key, b)
				} else {
					// Changes up to the written snapshot are durable; only
					// the newer ones still need recovery.
					b.firstDirtySCN = img.SCN + 1
				}
			}
		}
		if s.buffers[key] != b {
			continue
		}
		if b.dirty {
			continue // modified while writing: the newer change is not durable yet
		}
		s.lru.Remove(b.elem)
		delete(s.buffers, key)
		c.c.evictions.Inc()
		return yielded, true, nil
	}
	return yielded, false, nil
}

// dirtySnapshot collects the current dirty buffers (optionally restricted
// to one datafile) from the per-shard dirty lists — the sharding win: the
// scan touches only dirty buffers, never the full residency maps — and
// sorts them by (file name, block number) so write order is deterministic
// regardless of shard layout.
func (c *Cache) dirtySnapshot(f *storage.Datafile) []*buffer {
	var snap []*buffer
	for _, s := range c.shards {
		for _, b := range s.dirty {
			if f == nil || b.ref.File == f {
				snap = append(snap, b)
			}
		}
	}
	sortBuffers(snap)
	return snap
}

// Checkpoint writes every dirty buffer that existed when the call started
// to its datafile, charging the writes to the calling process. Buffers on
// lost or offline files are skipped and remain dirty. It returns the
// number of blocks written.
func (c *Cache) Checkpoint(p *sim.Proc) (int, error) {
	// Snapshot the dirty set: blocks dirtied while the checkpoint is in
	// progress belong to the next checkpoint.
	snap := c.dirtySnapshot(nil)
	written := 0
	for _, b := range snap {
		if !b.dirty {
			continue // cleaned concurrently (evicted)
		}
		if c.FlushableSCN != nil && b.block.SCN > c.FlushableSCN() {
			// The newest change's redo cannot flush right now. Forcing
			// it from the checkpoint would deadlock (see FlushableSCN);
			// leave the buffer for the next checkpoint, clamping this
			// one's position below its first dirty change.
			c.c.unflushedSkips.Inc()
			c.Trace.Instant(p.Now(), trace.CatDBWR, "DBWR", "unflushed skip",
				trace.S("file", b.ref.File.Name), trace.I("block", int64(b.ref.No)), trace.I("scn", int64(b.block.SCN)))
			continue
		}
		// Snapshot before forcing the log (see tryEvict): the flush wait
		// and the write both yield, so the live buffer may pick up newer,
		// unflushed changes meanwhile. The snapshot contains only changes
		// the forced flush covers, keeping the durable image within the
		// write-ahead rule.
		img := b.block.Clone()
		if err := c.forceLog(p, img.SCN); err != nil {
			return written, err
		}
		if !b.dirty {
			continue // cleaned while forcing the log
		}
		key := bufKey{file: b.ref.File, no: b.ref.No}
		s := c.shardFor(key)
		if s.buffers[key] != b {
			continue // evicted (and therefore written) meanwhile
		}
		if err := b.ref.File.WriteBlock(p, b.ref.No, img); err != nil {
			c.c.skippedWrites.Inc()
			continue
		}
		if b.block.SCN == img.SCN {
			c.setClean(s, key, b)
		} else {
			// A buffer that changed while being written stays dirty: its
			// newer change has SCN above this checkpoint's position, so
			// the next checkpoint (or recovery) covers it. The snapshot
			// made everything up to img.SCN durable.
			b.firstDirtySCN = img.SCN + 1
		}
		written++
		c.c.checkpointWrites.Inc()
	}
	return written, nil
}

// MinDirtySCN returns the earliest first-dirty SCN among dirty buffers, or
// -1 when the cache is clean. Crash recovery must begin at or before this
// SCN to reconstruct the lost buffers. Only the per-shard dirty lists are
// scanned.
func (c *Cache) MinDirtySCN() redo.SCN {
	minSCN := redo.SCN(-1)
	for _, s := range c.shards {
		for _, b := range s.dirty {
			if minSCN < 0 || b.firstDirtySCN < minSCN {
				minSCN = b.firstDirtySCN
			}
		}
	}
	return minSCN
}

// InvalidateAll drops every buffer without writing, modelling instance
// crash (SHUTDOWN ABORT): the cache content is simply lost.
func (c *Cache) InvalidateAll() {
	for i, s := range c.shards {
		c.shards[i] = newShard(s.capacity)
	}
	c.nDirty = 0
}

// FlushFileForce writes every dirty buffer of one datafile, bypassing the
// file's online flag (the offline-normal sweep: the file no longer accepts
// DML, so the dirty set can only shrink while we write). Buffers stay
// resident and clean.
func (c *Cache) FlushFileForce(p *sim.Proc, f *storage.Datafile) error {
	snap := c.dirtySnapshot(f)
	for _, b := range snap {
		if !b.dirty {
			continue
		}
		// Same snapshot discipline as Checkpoint; with the file offline
		// no new changes can arrive, but the invariant is kept uniform.
		img := b.block.Clone()
		if err := c.forceLog(p, img.SCN); err != nil {
			return err
		}
		if !b.dirty {
			continue
		}
		key := bufKey{file: b.ref.File, no: b.ref.No}
		s := c.shardFor(key)
		if s.buffers[key] != b {
			continue
		}
		if err := b.ref.File.WriteBlockForce(p, b.ref.No, img); err != nil {
			return err
		}
		if b.block.SCN == img.SCN {
			c.setClean(s, key, b)
		} else {
			b.firstDirtySCN = img.SCN + 1
		}
	}
	return nil
}

// FlushBlocksForce writes the dirty buffers among the given blocks,
// bypassing the files' online flags. Flashback uses it on a frozen
// table's segment: the freeze guarantees the dirty set cannot grow, and
// restricting the sweep to the segment leaves concurrent traffic to other
// tables sharing the same datafiles untouched.
func (c *Cache) FlushBlocksForce(p *sim.Proc, refs []storage.BlockRef) error {
	for _, ref := range refs {
		key := bufKey{file: ref.File, no: ref.No}
		s := c.shardFor(key)
		b, ok := s.buffers[key]
		if !ok || !b.dirty {
			continue
		}
		// Same snapshot discipline as Checkpoint.
		img := b.block.Clone()
		if err := c.forceLog(p, img.SCN); err != nil {
			return err
		}
		if !b.dirty || s.buffers[key] != b {
			continue
		}
		if err := ref.File.WriteBlockForce(p, ref.No, img); err != nil {
			return err
		}
		if b.block.SCN == img.SCN {
			c.setClean(s, key, b)
		} else {
			b.firstDirtySCN = img.SCN + 1
		}
	}
	return nil
}

// InvalidateBlocks drops the given blocks' buffers without writing, so
// stale cache content cannot mask images rewritten underneath the cache
// (flashback's reverse-apply). Dirty buffers among them must have been
// flushed first (FlushBlocksForce).
func (c *Cache) InvalidateBlocks(refs []storage.BlockRef) {
	for _, ref := range refs {
		key := bufKey{file: ref.File, no: ref.No}
		s := c.shardFor(key)
		b, ok := s.buffers[key]
		if !ok {
			continue
		}
		if b.dirty {
			c.setClean(s, key, b)
		}
		s.lru.Remove(b.elem)
		delete(s.buffers, key)
	}
}

// InvalidateFile drops all buffers of one datafile without writing (used
// when a file is taken offline for media recovery, so stale cache content
// cannot mask the restored images).
func (c *Cache) InvalidateFile(f *storage.Datafile) {
	for _, s := range c.shards {
		for key, b := range s.buffers {
			if key.file != f {
				continue
			}
			if b.dirty {
				c.setClean(s, key, b)
			}
			s.lru.Remove(b.elem)
			delete(s.buffers, key)
		}
	}
}

// forceLog applies the write-ahead rule before a dirty block write.
func (c *Cache) forceLog(p *sim.Proc, scn redo.SCN) error {
	if c.FlushLog == nil {
		return nil
	}
	start := p.Now()
	err := c.FlushLog(p, scn)
	// Only a force that actually waited is worth an event: most are
	// satisfied by redo already on disk.
	if waited := p.Now().Sub(start); waited > 0 {
		c.Trace.Instant(p.Now(), trace.CatDBWR, "DBWR", "wal force",
			trace.I("scn", int64(scn)), trace.I("wait_ns", int64(waited)))
	}
	return err
}

func sortBuffers(bs []*buffer) {
	sort.Slice(bs, func(i, j int) bool { return less(bs[i], bs[j]) })
}

func less(a, b *buffer) bool {
	if a.ref.File.Name != b.ref.File.Name {
		return a.ref.File.Name < b.ref.File.Name
	}
	return a.ref.No < b.ref.No
}
