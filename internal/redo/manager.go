package redo

import (
	"fmt"
	"time"

	"dbench/internal/sim"
	"dbench/internal/simdisk"
	"dbench/internal/trace"
)

// Group is one online redo log group: a fixed-size slot in the circular
// log, backed by one or more member files (multiplexing).
type Group struct {
	// ID is the group number (1-based, stable).
	ID int
	// Seq is the log sequence number of the group's current content;
	// zero means never written.
	Seq int

	members  []*simdisk.File
	capacity int64
	bytes    int64
	records  []Record

	archived bool
	ckptDone bool
	current  bool
}

// Members returns the group's member files.
func (g *Group) Members() []*simdisk.File { return g.members }

// Capacity returns the group's size limit in bytes.
func (g *Group) Capacity() int64 { return g.capacity }

// Bytes returns the bytes of flushed redo currently in the group.
func (g *Group) Bytes() int64 { return g.bytes }

// Records returns the flushed records in the group (callers must not
// modify the slice).
func (g *Group) Records() []Record { return g.records }

// Archived reports whether the group's content has been archived.
func (g *Group) Archived() bool { return g.archived }

// CkptDone reports whether the group's content is covered by a completed
// checkpoint (a reuse precondition).
func (g *Group) CkptDone() bool { return g.ckptDone }

// Current reports whether the group is being written.
func (g *Group) Current() bool { return g.current }

// FirstSCN returns the SCN of the first record in the group, or -1 when
// empty.
func (g *Group) FirstSCN() SCN {
	if len(g.records) == 0 {
		return -1
	}
	return g.records[0].SCN
}

// LastSCN returns the SCN of the last record in the group, or -1.
func (g *Group) LastSCN() SCN {
	if len(g.records) == 0 {
		return -1
	}
	return g.records[len(g.records)-1].SCN
}

// usable reports whether all member files are intact.
func (g *Group) usable() bool {
	for _, m := range g.members {
		if !m.Deleted() && !m.Corrupted() {
			return true
		}
	}
	return false
}

// Config configures the redo log manager; it carries the paper's Table 3
// knobs.
type Config struct {
	// GroupSizeBytes is the redo log file size (e.g. 1 MB .. 400 MB).
	GroupSizeBytes int64
	// Groups is the number of log groups (minimum 2).
	Groups int
	// MembersPerGroup multiplexes each group over this many files.
	MembersPerGroup int
	// Disk names the disk holding the log members.
	Disk string
	// ArchiveMode blocks group reuse until the group is archived.
	ArchiveMode bool
}

// Stats exposes counters used by the benchmark reports. It is a
// snapshot view over the manager's registered counters (see Counters).
type Stats struct {
	Switches        int
	Flushes         int
	FlushedBytes    int64
	CheckpointWaits int
	ArchiveWaits    int
	StallTime       time.Duration
}

// counters is the manager's registered counter block; one counter per
// Stats field, named "redo.<snake_case_field>" (StallTime is kept in
// nanoseconds as redo.stall_ns).
type counters struct {
	switches        *trace.Counter
	flushes         *trace.Counter
	flushedBytes    *trace.Counter
	checkpointWaits *trace.Counter
	archiveWaits    *trace.Counter
	stallNS         *trace.Counter
}

func newCounters() counters {
	return counters{
		switches:        trace.NewCounter("redo.switches"),
		flushes:         trace.NewCounter("redo.flushes"),
		flushedBytes:    trace.NewCounter("redo.flushed_bytes"),
		checkpointWaits: trace.NewCounter("redo.checkpoint_waits"),
		archiveWaits:    trace.NewCounter("redo.archive_waits"),
		stallNS:         trace.NewCounter("redo.stall_ns"),
	}
}

// Manager owns the online redo log: the record buffer, the group ring and
// the LGWR process.
type Manager struct {
	k   *sim.Kernel
	fs  *simdisk.FS
	cfg Config

	groups []*Group
	cur    int
	maxID  int // highest group ID ever allocated (resize never reuses IDs)

	// pendingSize/pendingGroups hold a requested online resize (ALTER
	// SYSTEM SET log_group_size_bytes / log_groups) until log switches
	// have applied it to every group; zero values mean nothing pending.
	pendingSize   int64
	pendingGroups int

	nextSCN    SCN
	flushedSCN SCN

	buffer      []Record
	bufferBytes int64

	wakeLGWR  sim.Cond
	flushed   sim.Cond
	reusable  sim.Cond
	lgwr      *sim.Proc
	running   bool
	failed    bool
	flushWant SCN

	// OnSwitch is called (from the LGWR process) right after a log
	// switch completes, with the group that was switched out. The engine
	// uses it to trigger a checkpoint and to hand the group to the
	// archiver.
	OnSwitch func(p *sim.Proc, old *Group)
	// OnFatal is called when the log becomes unusable (all members of
	// the current group lost). The engine crashes the instance.
	OnFatal func(err error)
	// UndoFloor, when set, returns the first-record SCN of the oldest
	// active transaction (0 when none). A group whose content is still
	// needed to roll that transaction back must not be reused: with
	// redo-carried undo this is the analogue of Oracle keeping undo in
	// rollback segments. Transactions must therefore fit within the
	// online log (TPC-C transactions are a few KB; groups are >= 1 MB).
	UndoFloor func() SCN
	// OnDurable, when set, is called (from the LGWR process) each time a
	// flushed segment advances flushedSCN, with exactly the records that
	// just became durable, in SCN order. It is the tap continuous redo
	// streaming hangs off: a replication cluster copies the records into
	// its per-standby outboxes here. The hook must not advance virtual
	// time (LGWR's flush timing is part of every pinned fingerprint).
	OnDurable func(p *sim.Proc, recs []Record)
	// OnCheckpointNeeded, when set, is called whenever a reserve or
	// switch stall finds the next group not yet checkpointed. A
	// switch-triggered checkpoint can complete short of the group's last
	// SCN (a buffer re-dirtied mid-drain clamps the checkpoint
	// position), and with the timer checkpoint minutes away nothing else
	// would ever advance it: the workload wedges in "checkpoint not
	// complete" until the timer fires. The hook lets the stall itself
	// demand a fresh checkpoint, the way Oracle's CKPT keeps advancing
	// the position while sessions wait on the switch.
	OnCheckpointNeeded func()

	// Trace, when set, receives lgwr-category events (flush spans, log
	// switches, reserve stalls). A nil tracer is valid.
	Trace *trace.Tracer

	c counters
}

// NewManager creates the group files on disk and returns a manager ready
// for Start. The first group starts as current with sequence 1.
func NewManager(k *sim.Kernel, fs *simdisk.FS, cfg Config) (*Manager, error) {
	if cfg.Groups < 2 {
		return nil, fmt.Errorf("redo: need at least 2 groups, got %d", cfg.Groups)
	}
	if cfg.MembersPerGroup < 1 {
		cfg.MembersPerGroup = 1
	}
	if cfg.GroupSizeBytes <= 0 {
		return nil, fmt.Errorf("redo: group size must be positive")
	}
	m := &Manager{k: k, fs: fs, cfg: cfg, maxID: cfg.Groups, nextSCN: 1, c: newCounters()}
	for i := 0; i < cfg.Groups; i++ {
		g := &Group{ID: i + 1, capacity: cfg.GroupSizeBytes, ckptDone: true, archived: true}
		for j := 0; j < cfg.MembersPerGroup; j++ {
			name := fmt.Sprintf("redo%02d_%d.log", i+1, j)
			f, err := fs.Create(cfg.Disk, name, 0)
			if err != nil {
				return nil, fmt.Errorf("redo: create member: %w", err)
			}
			g.members = append(g.members, f)
		}
		m.groups = append(m.groups, g)
	}
	m.groups[0].current = true
	m.groups[0].Seq = 1
	return m, nil
}

// Config returns the manager's configuration. Groups and GroupSizeBytes
// track an online resize as it lands (see RequestResize).
func (m *Manager) Config() Config { return m.cfg }

// RequestResize schedules an online change of the group size and group
// count. The change is deferred: each log switch re-creates the groups
// that are safe to touch (reusable: checkpointed, archived, above the
// undo floor) at the new geometry, so the resize completes after at
// most a few switches plus a checkpoint — redo that recovery might
// still need is never discarded. Requesting the current geometry clears
// any pending resize.
func (m *Manager) RequestResize(sizeBytes int64, groups int) error {
	if groups < 2 {
		return fmt.Errorf("redo: need at least 2 groups, got %d", groups)
	}
	if sizeBytes <= 0 {
		return fmt.Errorf("redo: group size must be positive")
	}
	if sizeBytes == m.cfg.GroupSizeBytes && groups == len(m.groups) {
		m.pendingSize, m.pendingGroups = 0, 0
		return nil
	}
	m.pendingSize, m.pendingGroups = sizeBytes, groups
	m.Trace.Instant(m.k.Now(), trace.CatLGWR, "redo", "resize requested",
		trace.I("size", sizeBytes), trace.I("groups", int64(groups)))
	return nil
}

// PendingResize reports the target geometry of a resize that has not
// fully landed yet.
func (m *Manager) PendingResize() (sizeBytes int64, groups int, pending bool) {
	if m.pendingSize == 0 && m.pendingGroups == 0 {
		return 0, 0, false
	}
	return m.pendingSize, m.pendingGroups, true
}

// TargetGroupSize returns the group size the log is converging to (the
// pending value when a resize is in flight, the current one otherwise).
func (m *Manager) TargetGroupSize() int64 {
	if m.pendingSize != 0 {
		return m.pendingSize
	}
	return m.cfg.GroupSizeBytes
}

// TargetGroups returns the group count the log is converging to.
func (m *Manager) TargetGroups() int {
	if m.pendingGroups != 0 {
		return m.pendingGroups
	}
	return len(m.groups)
}

// applyResize advances a pending resize. Called on the LGWR process at
// every log switch, immediately after the ring advanced: the new
// current group is empty, so it adopts the new capacity in place; every
// reusable group is re-created at the new geometry (grown, shrunk or
// resized); groups still holding needed redo — at minimum the group
// just switched out of, which is never checkpointed yet — are retained
// untouched and picked up at a later switch.
func (m *Manager) applyResize(p *sim.Proc) error {
	if m.pendingSize == 0 && m.pendingGroups == 0 {
		return nil
	}
	size, target := m.pendingSize, m.pendingGroups
	if size == 0 {
		size = m.cfg.GroupSizeBytes
	}
	if target == 0 {
		target = len(m.groups)
	}
	// Rebuild the ring in reuse order starting at the current group.
	ring := make([]*Group, 0, max(len(m.groups), target))
	for i := range m.groups {
		ring = append(ring, m.groups[(m.cur+i)%len(m.groups)])
	}
	kept := ring[:1:1]
	ring[0].capacity = size
	done := true
	for _, g := range ring[1:] {
		if !m.reusableGroup(g) {
			// Still holds redo a recovery (or archiver) may need.
			kept = append(kept, g)
			done = done && g.capacity == size
			continue
		}
		if len(kept) >= target {
			// Surplus reusable group: drop it and its member files.
			for _, member := range g.members {
				if !member.Deleted() {
					m.fs.Delete(member.Name())
				}
			}
			continue
		}
		g.capacity = size
		g.bytes = 0
		g.records = nil
		g.Seq = 0
		g.archived = true
		g.ckptDone = true
		for _, member := range g.members {
			if !member.Deleted() && !member.Corrupted() {
				member.Truncate(0)
			}
		}
		kept = append(kept, g)
	}
	for len(kept) < target {
		m.maxID++
		g := &Group{ID: m.maxID, capacity: size, ckptDone: true, archived: true}
		for j := 0; j < max(m.cfg.MembersPerGroup, 1); j++ {
			name := fmt.Sprintf("redo%02d_%d.log", g.ID, j)
			f, err := m.fs.Create(m.cfg.Disk, name, 0)
			if err != nil {
				return fmt.Errorf("redo: resize member: %w", err)
			}
			g.members = append(g.members, f)
		}
		kept = append(kept, g)
	}
	m.groups = kept
	m.cur = 0
	m.cfg.GroupSizeBytes = size
	m.cfg.Groups = len(m.groups)
	if done && len(m.groups) == target {
		m.pendingSize, m.pendingGroups = 0, 0
		m.Trace.Instant(p.Now(), trace.CatLGWR, "redo", "resize applied",
			trace.I("size", size), trace.I("groups", int64(target)))
	}
	m.reusable.Broadcast(m.k)
	return nil
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Switches:        int(m.c.switches.Value()),
		Flushes:         int(m.c.flushes.Value()),
		FlushedBytes:    m.c.flushedBytes.Value(),
		CheckpointWaits: int(m.c.checkpointWaits.Value()),
		ArchiveWaits:    int(m.c.archiveWaits.Value()),
		StallTime:       time.Duration(m.c.stallNS.Value()),
	}
}

// Counters exposes the manager's counters for the instance registry.
func (m *Manager) Counters() []*trace.Counter {
	return []*trace.Counter{
		m.c.switches, m.c.flushes, m.c.flushedBytes,
		m.c.checkpointWaits, m.c.archiveWaits, m.c.stallNS,
	}
}

// Groups returns the log groups (callers must not modify the slice).
func (m *Manager) Groups() []*Group { return m.groups }

// CurrentGroup returns the group being written.
func (m *Manager) CurrentGroup() *Group { return m.groups[m.cur] }

// NextSCN returns the SCN the next appended record will receive.
func (m *Manager) NextSCN() SCN { return m.nextSCN }

// FlushedSCN returns the highest SCN durably written to the log files.
func (m *Manager) FlushedSCN() SCN { return m.flushedSCN }

// Start launches the LGWR background process.
func (m *Manager) Start() {
	if m.running {
		return
	}
	m.running = true
	m.failed = false
	m.lgwr = m.k.Go("LGWR", m.lgwrLoop)
}

// Stop terminates LGWR without flushing (used by SHUTDOWN ABORT). Unflushed
// buffer content is discarded, exactly like a crash.
func (m *Manager) Stop() {
	if !m.running {
		return
	}
	m.running = false
	if m.lgwr != nil {
		m.lgwr.Kill()
	}
	m.buffer = nil
	m.bufferBytes = 0
	// Wake anything blocked on the log so it can observe the failure.
	m.flushed.Broadcast(m.k)
	m.reusable.Broadcast(m.k)
}

// Running reports whether LGWR is active.
func (m *Manager) Running() bool { return m.running }

// Failed reports whether the log hit a fatal media failure.
func (m *Manager) Failed() bool { return m.failed }

// reusableGroup reports whether g may be overwritten.
func (m *Manager) reusableGroup(g *Group) bool {
	if !g.ckptDone {
		return false
	}
	if m.cfg.ArchiveMode && !g.archived {
		return false
	}
	if m.UndoFloor != nil {
		if floor := m.UndoFloor(); floor > 0 && floor <= g.LastSCN() {
			return false
		}
	}
	return true
}

// NotifyUndoFloorChanged wakes processes stalled on group reuse after the
// oldest active transaction finishes (the undo floor advanced).
func (m *Manager) NotifyUndoFloorChanged() {
	m.reusable.Broadcast(m.k)
}

// Reserve blocks until the log can accept size more bytes of redo: the
// current group plus the consecutively reusable (checkpointed and
// archived) groups after it must hold everything buffered plus size.
// This is Oracle's redo-allocation discipline: a process may not modify a
// buffer before its redo has guaranteed flushable space, which is also
// what makes "checkpoint not complete" and "archival required" stalls hit
// the workload instead of deadlocking the checkpoint itself. Counting
// only pre-reserved space matters: admitting redo on the strength of a
// single reusable group lets the backlog outgrow it, and LGWR then stalls
// mid-batch on a switch no one guaranteed — with buffers already mutated,
// the checkpoint that would release the group deadlocks on its own
// write-ahead flush.
func (m *Manager) Reserve(p *sim.Proc, size int64) error {
	stallStart := sim.Time(-1)
	for {
		if !m.running || m.failed {
			return fmt.Errorf("redo: log writer down")
		}
		cur := m.groups[m.cur]
		avail := cur.capacity - cur.bytes - m.bufferBytes
		for i := 1; i < len(m.groups) && size > avail; i++ {
			g := m.groups[(m.cur+i)%len(m.groups)]
			if !m.reusableGroup(g) {
				break
			}
			avail += g.capacity
		}
		if size <= avail {
			break
		}
		if stallStart < 0 {
			stallStart = p.Now()
		}
		if next := m.groups[(m.cur+1)%len(m.groups)]; !next.ckptDone {
			m.c.checkpointWaits.Inc()
			if m.OnCheckpointNeeded != nil {
				m.OnCheckpointNeeded()
			}
		} else {
			m.c.archiveWaits.Inc()
		}
		m.reusable.Wait(p)
	}
	if stallStart >= 0 {
		waited := p.Now().Sub(stallStart)
		m.c.stallNS.Add(int64(waited))
		m.Trace.Instant(p.Now(), trace.CatLGWR, "redo", "reserve stall",
			trace.I("bytes", size), trace.I("wait_ns", int64(waited)))
	}
	return nil
}

// Append assigns the next SCN to rec and places it in the redo buffer. It
// does not block; durability requires WaitFlushed. Appending while the log
// is down still assigns an SCN but the record is lost, mirroring writes
// into a crashed instance's buffer (callers are expected to notice the
// instance is down before relying on it).
func (m *Manager) Append(rec Record) SCN {
	rec.SCN = m.nextSCN
	m.nextSCN++
	if !m.running || m.failed {
		// The instance is down: the record goes nowhere, exactly like
		// writing into a crashed instance's SGA. Callers discover the
		// failure at WaitFlushed.
		return rec.SCN
	}
	m.buffer = append(m.buffer, rec)
	m.bufferBytes += rec.Size()
	return rec.SCN
}

// WaitFlushed blocks p until all records up to scn are durable (or the log
// has failed/stopped, which it reports as an error).
func (m *Manager) WaitFlushed(p *sim.Proc, scn SCN) error {
	if scn > m.flushWant {
		m.flushWant = scn
	}
	m.wakeLGWR.Broadcast(m.k)
	for m.flushedSCN < scn {
		if !m.running || m.failed {
			return fmt.Errorf("redo: log writer down")
		}
		m.flushed.Wait(p)
	}
	return nil
}

// CheckpointCompleted informs the log that a checkpoint at scn has been
// durably recorded: every group whose content is entirely below scn becomes
// eligible for reuse (subject to archiving).
func (m *Manager) CheckpointCompleted(scn SCN) {
	for _, g := range m.groups {
		if g.current || g.ckptDone {
			continue
		}
		if last := g.LastSCN(); last >= 0 && last <= scn {
			g.ckptDone = true
		}
	}
	m.reusable.Broadcast(m.k)
}

// MarkArchived records that g's content is safely archived, unblocking its
// reuse.
func (m *Manager) MarkArchived(g *Group) {
	g.archived = true
	m.reusable.Broadcast(m.k)
}

// lgwrLoop is the LGWR process body: it waits for flush demand, drains the
// buffer into the current group (switching groups as they fill), charges
// the member writes to disk, and wakes committers.
func (m *Manager) lgwrLoop(p *sim.Proc) {
	for m.running {
		for m.running && (len(m.buffer) == 0 || m.flushWant <= m.flushedSCN) {
			m.wakeLGWR.Wait(p)
		}
		if !m.running {
			return
		}
		if err := m.drainBuffer(p); err != nil {
			m.failed = true
			m.running = false
			m.flushed.Broadcast(m.k)
			if m.OnFatal != nil {
				m.OnFatal(err)
			}
			return
		}
		m.c.flushes.Inc()
	}
}

// drainBuffer appends buffered records to groups, switching when full, and
// charges one sequential member write per contiguous segment. Records are
// consumed from the shared buffer one at a time (not snapshotted) so
// FlushableSCN always sees exactly the unplaced backlog, and each
// completed segment advances flushedSCN immediately: records already on
// disk are durable even if a later switch stalls, and the checkpoint that
// would release the stalled switch may itself be waiting on exactly those
// records.
func (m *Manager) drainBuffer(p *sim.Proc) error {
	span := m.Trace.Begin(p.Now(), trace.CatLGWR, "LGWR", "flush")
	var total int64
	defer func() {
		m.Trace.End(p.Now(), span,
			trace.I("bytes", total), trace.I("flushed_scn", int64(m.flushedSCN)))
	}()
	var segBytes int64
	var segRecs []Record
	var lastPlaced SCN = -1
	flushSeg := func() error {
		if segBytes == 0 {
			return nil
		}
		g := m.groups[m.cur]
		if !g.usable() {
			return fmt.Errorf("redo: group %d lost all members", g.ID)
		}
		for _, member := range g.members {
			if member.Deleted() || member.Corrupted() {
				continue
			}
			if err := member.Append(p, segBytes); err != nil {
				return fmt.Errorf("redo: member write: %w", err)
			}
		}
		m.c.flushedBytes.Add(segBytes)
		total += segBytes
		segBytes = 0
		if lastPlaced > m.flushedSCN {
			m.flushedSCN = lastPlaced
			m.flushed.Broadcast(m.k)
		}
		if m.OnDurable != nil && len(segRecs) > 0 {
			m.OnDurable(p, segRecs)
		}
		segRecs = nil
		return nil
	}
	for len(m.buffer) > 0 {
		rec := m.buffer[0]
		g := m.groups[m.cur]
		if g.bytes+rec.Size() > g.capacity && g.bytes > 0 {
			if err := flushSeg(); err != nil {
				return err
			}
			if err := m.switchGroup(p); err != nil {
				return err
			}
			g = m.groups[m.cur]
		}
		m.buffer = m.buffer[1:]
		g.records = append(g.records, rec)
		g.bytes += rec.Size()
		segBytes += rec.Size()
		if m.OnDurable != nil {
			segRecs = append(segRecs, rec)
		}
		m.bufferBytes -= rec.Size()
		lastPlaced = rec.SCN
	}
	return flushSeg()
}

// FlushableSCN returns the highest SCN the log writer is guaranteed to
// reach without waiting on a group it cannot yet reuse: everything
// flushed, plus the buffered backlog as far as it fits into the current
// group and the consecutively reusable groups after it (simulating the
// drain's own placement, oversized records claiming a fresh group whole).
// A checkpoint may safely wait for redo up to this horizon; waiting
// beyond it can deadlock, since releasing a stalled group may require
// this very checkpoint to complete.
func (m *Manager) FlushableSCN() SCN {
	horizon := m.flushedSCN
	free := m.groups[m.cur].capacity - m.groups[m.cur].bytes
	next := 1
	for _, rec := range m.buffer {
		if sz := rec.Size(); sz > free {
			if next >= len(m.groups) {
				return horizon
			}
			g := m.groups[(m.cur+next)%len(m.groups)]
			if !m.reusableGroup(g) {
				return horizon
			}
			free = g.capacity
			next++
		}
		free -= rec.Size()
		if free < 0 {
			free = 0
		}
		horizon = rec.SCN
	}
	return horizon
}

// switchGroup advances to the next group in the ring, waiting until it is
// checkpointed and archived (the paper's "checkpoint not complete" /
// "archival required" stalls), then notifies OnSwitch with the old group.
func (m *Manager) switchGroup(p *sim.Proc) error {
	old := m.groups[m.cur]
	old.current = false
	old.ckptDone = false
	if m.cfg.ArchiveMode {
		old.archived = false
	}

	next := m.groups[(m.cur+1)%len(m.groups)]
	span := m.Trace.Begin(p.Now(), trace.CatLGWR, "LGWR", "log switch", trace.I("from_seq", int64(old.Seq)))
	stallStart := p.Now()
	for {
		if !next.usable() {
			return fmt.Errorf("redo: next group %d unusable", next.ID)
		}
		if m.reusableGroup(next) {
			break
		}
		if !next.ckptDone {
			m.c.checkpointWaits.Inc()
			if m.OnCheckpointNeeded != nil {
				m.OnCheckpointNeeded()
			}
		} else {
			m.c.archiveWaits.Inc()
		}
		m.reusable.Wait(p)
	}
	stalled := p.Now().Sub(stallStart)
	m.c.stallNS.Add(int64(stalled))

	m.cur = (m.cur + 1) % len(m.groups)
	next.current = true
	next.Seq = old.Seq + 1
	next.bytes = 0
	next.records = nil
	for _, member := range next.members {
		member.Truncate(0) // reuse rewrites the file from the start
	}
	m.c.switches.Inc()
	m.Trace.End(p.Now(), span,
		trace.I("to_seq", int64(next.Seq)), trace.I("stall_ns", int64(stalled)))
	if err := m.applyResize(p); err != nil {
		return err
	}
	if m.OnSwitch != nil {
		m.OnSwitch(p, old)
	}
	return nil
}

// ForceSwitch performs an administrative log switch (ALTER SYSTEM SWITCH
// LOGFILE), used at backup time so the archive captures all redo.
func (m *Manager) ForceSwitch(p *sim.Proc) error {
	if !m.running {
		return fmt.Errorf("redo: log writer down")
	}
	if m.groups[m.cur].bytes == 0 {
		return nil
	}
	return m.switchGroup(p)
}

// OnlineRecords returns, in SCN order, the records with SCN >= from that
// are still present in the online groups (not yet overwritten by reuse),
// skipping groups whose members were all lost. ok reports whether the range
// is contiguous from `from` (false means older redo was overwritten or
// lost, so callers need the archive).
func (m *Manager) OnlineRecords(from SCN) (recs []Record, ok bool) {
	ordered := m.groupsBySeq()
	lowest := SCN(-1)
	for _, g := range ordered {
		if !g.usable() {
			continue
		}
		for i := range g.records {
			r := g.records[i]
			if r.SCN > m.flushedSCN {
				break
			}
			if lowest < 0 {
				lowest = r.SCN
			}
			if r.SCN >= from {
				recs = append(recs, r)
			}
		}
	}
	ok = lowest >= 0 && lowest <= from
	if from <= 0 {
		ok = lowest <= 1
	}
	if m.flushedSCN == 0 {
		ok = true // nothing ever flushed: empty range is contiguous
	}
	return recs, ok
}

// LowestOnlineSCN returns the smallest SCN still present in the online
// groups, or -1 when nothing is flushed.
func (m *Manager) LowestOnlineSCN() SCN {
	for _, g := range m.groupsBySeq() {
		if !g.usable() {
			continue
		}
		if s := g.FirstSCN(); s >= 0 {
			return s
		}
	}
	return -1
}

// groupsBySeq returns groups with content ordered by sequence number.
func (m *Manager) groupsBySeq() []*Group {
	var used []*Group
	for _, g := range m.groups {
		if g.Seq > 0 && len(g.records) > 0 {
			used = append(used, g)
		}
	}
	for i := 1; i < len(used); i++ {
		for j := i; j > 0 && used[j-1].Seq > used[j].Seq; j-- {
			used[j-1], used[j] = used[j], used[j-1]
		}
	}
	return used
}

// BufferedBytes reports the unflushed redo buffer size.
func (m *Manager) BufferedBytes() int64 { return m.bufferBytes }

// ResetLogs reinitialises the online log after incomplete recovery (ALTER
// DATABASE OPEN RESETLOGS): all group content is discarded and the SCN
// stream resumes at nextSCN. The manager must be stopped.
func (m *Manager) ResetLogs(nextSCN SCN) error {
	if m.running {
		return fmt.Errorf("redo: cannot reset a running log")
	}
	if nextSCN < m.nextSCN {
		nextSCN = m.nextSCN
	}
	for _, g := range m.groups {
		g.records = nil
		g.bytes = 0
		g.Seq = 0
		g.archived = true
		g.ckptDone = true
		g.current = false
		for _, member := range g.members {
			if member.Deleted() || member.Corrupted() {
				// Recreate lost members as part of the reset.
				if _, err := m.fs.Restore(member.Name(), 0); err != nil {
					return fmt.Errorf("redo: reset member: %w", err)
				}
			}
			member.Truncate(0)
		}
	}
	m.cur = 0
	m.groups[0].current = true
	m.groups[0].Seq = 1
	m.nextSCN = nextSCN
	m.flushedSCN = nextSCN - 1
	m.buffer = nil
	m.bufferBytes = 0
	m.flushWant = 0
	m.failed = false
	return nil
}
