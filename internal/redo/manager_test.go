package redo

import (
	"strings"
	"testing"
	"time"

	"dbench/internal/sim"
	"dbench/internal/simdisk"
)

func newTestLog(t *testing.T, groupSize int64, groups int, archive bool) (*sim.Kernel, *simdisk.FS, *Manager) {
	t.Helper()
	k := sim.NewKernel(1)
	fs := simdisk.NewFS(simdisk.DefaultSpec("redo"))
	m, err := NewManager(k, fs, Config{
		GroupSizeBytes: groupSize,
		Groups:         groups,
		Disk:           "redo",
		ArchiveMode:    archive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, fs, m
}

func dataRec(txn TxnID, key int64, payload int) Record {
	return Record{Txn: txn, Op: OpUpdate, Table: "t", Key: key, After: make([]byte, payload)}
}

func TestAppendAssignsMonotonicSCN(t *testing.T) {
	_, _, m := newTestLog(t, 1<<20, 3, false)
	s1 := m.Append(dataRec(1, 1, 10))
	s2 := m.Append(dataRec(1, 2, 10))
	if s2 != s1+1 {
		t.Fatalf("SCNs %d,%d not consecutive", s1, s2)
	}
	if m.NextSCN() != s2+1 {
		t.Fatalf("next SCN = %d", m.NextSCN())
	}
}

func TestCommitWaitsForDurableFlush(t *testing.T) {
	k, fs, m := newTestLog(t, 1<<20, 3, false)
	m.Start()
	var flushedAt sim.Time
	k.Go("writer", func(p *sim.Proc) {
		m.Append(dataRec(1, 1, 100))
		scn := m.Append(Record{Txn: 1, Op: OpCommit})
		if err := m.WaitFlushed(p, scn); err != nil {
			t.Error(err)
		}
		flushedAt = p.Now()
	})
	k.Run(sim.Time(time.Second))
	m.Stop()
	k.RunAll()
	if flushedAt == 0 {
		t.Fatal("commit never became durable")
	}
	if m.FlushedSCN() < 2 {
		t.Fatalf("flushedSCN = %d", m.FlushedSCN())
	}
	_, w, _, wb := fsStats(fs, "redo")
	if w == 0 || wb == 0 {
		t.Fatalf("no disk writes charged: ops=%d bytes=%d", w, wb)
	}
}

func fsStats(fs *simdisk.FS, disk string) (reads, writes, rb, wb int64) {
	r, w, rbb, wbb := fs.Disk(disk).Stats()
	return r, w, rbb, wbb
}

func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	k, _, m := newTestLog(t, 1<<20, 3, false)
	m.Start()
	const writers = 8
	done := 0
	for i := 0; i < writers; i++ {
		txn := TxnID(i + 1)
		k.Go("w", func(p *sim.Proc) {
			m.Append(dataRec(txn, 1, 50))
			scn := m.Append(Record{Txn: txn, Op: OpCommit})
			if err := m.WaitFlushed(p, scn); err != nil {
				t.Error(err)
			}
			done++
		})
	}
	k.Run(sim.Time(time.Second))
	if done != writers {
		t.Fatalf("done = %d, want %d", done, writers)
	}
	// All writers appended before LGWR first ran, so a single flush
	// should have covered everything (group commit).
	if st := m.Stats(); st.Flushes > 2 {
		t.Fatalf("flushes = %d, expected group commit to batch", st.Flushes)
	}
	m.Stop()
	k.RunAll()
}

func TestLogSwitchOnFull(t *testing.T) {
	k, _, m := newTestLog(t, 2048, 3, false)
	m.Start()
	var switched []*Group
	m.OnSwitch = func(p *sim.Proc, old *Group) {
		switched = append(switched, old)
		// Immediately complete the checkpoint so reuse never stalls.
		m.CheckpointCompleted(old.LastSCN())
	}
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			scn := m.Append(dataRec(1, int64(i), 100)) // ~225 bytes each
			if err := m.WaitFlushed(p, scn); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Run(sim.Time(time.Minute))
	if len(switched) == 0 {
		t.Fatal("no log switch happened")
	}
	if m.Stats().Switches != len(switched) {
		t.Fatalf("stats.Switches = %d, callbacks = %d", m.Stats().Switches, len(switched))
	}
	// Sequence numbers must increase across switches.
	cur := m.CurrentGroup()
	if cur.Seq < 2 {
		t.Fatalf("current seq = %d", cur.Seq)
	}
	m.Stop()
	k.RunAll()
}

func TestSwitchStallsUntilCheckpointComplete(t *testing.T) {
	k, _, m := newTestLog(t, 2048, 2, false)
	m.Start()
	var pending []*Group
	m.OnSwitch = func(p *sim.Proc, old *Group) { pending = append(pending, old) }
	var lastCommit sim.Time
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			scn := m.Append(dataRec(1, int64(i), 100))
			if err := m.WaitFlushed(p, scn); err != nil {
				return // expected when test ends with log stalled
			}
			lastCommit = p.Now()
		}
	})
	// Complete checkpoints only after 5 virtual seconds; the writer must
	// stall in between because with 2 groups the ring wraps immediately.
	k.Go("ckpt", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		m.CheckpointCompleted(m.NextSCN())
	})
	k.Run(sim.Time(10 * time.Second))
	if m.Stats().CheckpointWaits == 0 {
		t.Fatal("expected checkpoint-not-complete stalls")
	}
	if m.Stats().StallTime == 0 {
		t.Fatal("expected stall time accounted")
	}
	if lastCommit < sim.Time(5*time.Second) {
		t.Fatalf("writer finished at %v before checkpoint completion", lastCommit)
	}
	m.Stop()
	k.RunAll()
}

func TestArchiveModeBlocksReuseUntilArchived(t *testing.T) {
	k, _, m := newTestLog(t, 2048, 2, true)
	m.Start()
	var toArchive []*Group
	m.OnSwitch = func(p *sim.Proc, old *Group) {
		m.CheckpointCompleted(old.LastSCN()) // checkpoint instant
		toArchive = append(toArchive, old)
	}
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			scn := m.Append(dataRec(1, int64(i), 100))
			if err := m.WaitFlushed(p, scn); err != nil {
				return
			}
		}
	})
	k.Go("arch", func(p *sim.Proc) {
		for p.Now() < sim.Time(20*time.Second) {
			p.Sleep(3 * time.Second)
			for _, g := range toArchive {
				m.MarkArchived(g)
			}
			toArchive = nil
		}
	})
	k.Run(sim.Time(20 * time.Second))
	if m.Stats().ArchiveWaits == 0 {
		t.Fatal("expected archival-required stalls")
	}
	m.Stop()
	k.RunAll()
}

func TestOnlineRecordsContiguity(t *testing.T) {
	k, _, m := newTestLog(t, 4096, 2, false)
	m.Start()
	m.OnSwitch = func(p *sim.Proc, old *Group) { m.CheckpointCompleted(old.LastSCN()) }
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			scn := m.Append(dataRec(1, int64(i), 100))
			if err := m.WaitFlushed(p, scn); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Run(sim.Time(time.Minute))

	// Early SCNs were overwritten by circular reuse.
	if _, ok := m.OnlineRecords(1); ok {
		t.Fatal("SCN 1 should have been overwritten")
	}
	// The most recent records are available and contiguous.
	recs, ok := m.OnlineRecords(m.FlushedSCN() - 5)
	if !ok {
		t.Fatal("recent range should be contiguous")
	}
	if len(recs) != 6 {
		t.Fatalf("len(recs) = %d, want 6", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].SCN != recs[i-1].SCN+1 {
			t.Fatalf("records not in SCN order: %d then %d", recs[i-1].SCN, recs[i].SCN)
		}
	}
	m.Stop()
	k.RunAll()
}

func TestStopDiscardsBuffer(t *testing.T) {
	k, _, m := newTestLog(t, 1<<20, 3, false)
	m.Start()
	m.Append(dataRec(1, 1, 100)) // never flushed
	m.Stop()
	k.RunAll()
	if m.BufferedBytes() != 0 {
		t.Fatalf("buffer = %d bytes after stop", m.BufferedBytes())
	}
	if m.FlushedSCN() != 0 {
		t.Fatalf("flushedSCN = %d, want 0", m.FlushedSCN())
	}
	recs, _ := m.OnlineRecords(0)
	if len(recs) != 0 {
		t.Fatalf("online records = %d after crash with no flush", len(recs))
	}
}

func TestWaitFlushedAfterStopReturnsError(t *testing.T) {
	k, _, m := newTestLog(t, 1<<20, 3, false)
	m.Start()
	var gotErr error
	k.Go("w", func(p *sim.Proc) {
		scn := m.Append(dataRec(1, 1, 100))
		p.Sleep(time.Second) // let Stop run first via the stopper proc
		gotErr = m.WaitFlushed(p, scn+1000)
	})
	k.Go("stopper", func(p *sim.Proc) {
		m.Stop()
	})
	k.RunAll()
	if gotErr == nil {
		t.Fatal("WaitFlushed on stopped log should fail")
	}
}

func TestLostAllMembersIsFatal(t *testing.T) {
	k, fs, m := newTestLog(t, 2048, 2, false)
	m.Start()
	m.OnSwitch = func(p *sim.Proc, old *Group) { m.CheckpointCompleted(old.LastSCN()) }
	var fatal error
	m.OnFatal = func(err error) { fatal = err }
	k.Go("w", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			scn := m.Append(dataRec(1, int64(i), 100))
			if err := m.WaitFlushed(p, scn); err != nil {
				return
			}
		}
	})
	k.Go("fault", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		for _, g := range m.Groups() {
			for _, member := range g.Members() {
				_ = fs.Delete(member.Name())
			}
		}
	})
	k.Run(sim.Time(time.Minute))
	if fatal == nil {
		t.Fatal("expected fatal log failure")
	}
	if !m.Failed() {
		t.Fatal("manager should report Failed")
	}
	if !strings.Contains(fatal.Error(), "redo") {
		t.Fatalf("fatal = %v", fatal)
	}
	k.RunAll()
}

func TestMultiplexedSurvivesSingleMemberLoss(t *testing.T) {
	k := sim.NewKernel(1)
	fs := simdisk.NewFS(simdisk.DefaultSpec("redo"))
	m, err := NewManager(k, fs, Config{
		GroupSizeBytes:  1 << 20,
		Groups:          2,
		MembersPerGroup: 2,
		Disk:            "redo",
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	var fatal error
	m.OnFatal = func(err error) { fatal = err }
	// Delete one member of the current group.
	_ = fs.Delete(m.CurrentGroup().Members()[0].Name())
	ok := false
	k.Go("w", func(p *sim.Proc) {
		scn := m.Append(dataRec(1, 1, 100))
		if err := m.WaitFlushed(p, scn); err == nil {
			ok = true
		}
	})
	k.Run(sim.Time(time.Second))
	if fatal != nil {
		t.Fatalf("fatal with surviving member: %v", fatal)
	}
	if !ok {
		t.Fatal("commit failed despite surviving member")
	}
	m.Stop()
	k.RunAll()
}

func TestForceSwitch(t *testing.T) {
	k, _, m := newTestLog(t, 1<<20, 3, false)
	m.Start()
	m.OnSwitch = func(p *sim.Proc, old *Group) { m.CheckpointCompleted(old.LastSCN()) }
	k.Go("w", func(p *sim.Proc) {
		scn := m.Append(dataRec(1, 1, 100))
		if err := m.WaitFlushed(p, scn); err != nil {
			t.Error(err)
		}
		before := m.CurrentGroup().Seq
		if err := m.ForceSwitch(p); err != nil {
			t.Error(err)
		}
		if m.CurrentGroup().Seq != before+1 {
			t.Errorf("seq %d after force switch, want %d", m.CurrentGroup().Seq, before+1)
		}
		// Empty current group: force switch is a no-op.
		if err := m.ForceSwitch(p); err != nil {
			t.Error(err)
		}
		if m.CurrentGroup().Seq != before+1 {
			t.Errorf("empty force switch advanced seq")
		}
	})
	k.Run(sim.Time(time.Second))
	m.Stop()
	k.RunAll()
}

func TestNewManagerValidation(t *testing.T) {
	k := sim.NewKernel(1)
	fs := simdisk.NewFS(simdisk.DefaultSpec("redo"))
	if _, err := NewManager(k, fs, Config{GroupSizeBytes: 1024, Groups: 1, Disk: "redo"}); err == nil {
		t.Fatal("1 group accepted")
	}
	if _, err := NewManager(k, fs, Config{GroupSizeBytes: 0, Groups: 2, Disk: "redo"}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewManager(k, fs, Config{GroupSizeBytes: 1024, Groups: 2, Disk: "nope"}); err == nil {
		t.Fatal("unknown disk accepted")
	}
}

// FlushableSCN must cover the buffered backlog only as far as the current
// group and consecutively reusable groups can hold it: a checkpoint that
// waits for redo beyond that horizon deadlocks against the very group
// switch its completion would release.
func TestFlushableSCNStopsAtUnreusableGroup(t *testing.T) {
	k, _, m := newTestLog(t, 2048, 2, false)
	m.Start() // buffer records; the kernel never runs, so LGWR stays asleep
	// 10 records overflow the current group but fit current + next.
	var scns []SCN
	for i := 0; i < 10; i++ {
		scns = append(scns, m.Append(dataRec(1, int64(i), 100)))
	}
	last := scns[len(scns)-1]
	if got := m.FlushableSCN(); got != last {
		t.Fatalf("with a reusable next group FlushableSCN = %d, want %d", got, last)
	}
	m.groups[1].ckptDone = false // its content now awaits a checkpoint
	got := m.FlushableSCN()
	if got >= last {
		t.Fatalf("FlushableSCN = %d, want below last appended %d", got, last)
	}
	if got < scns[0] {
		t.Fatalf("FlushableSCN = %d, want at least the first record %d (it fits the current group)", got, scns[0])
	}
	m.groups[1].ckptDone = true
	if got := m.FlushableSCN(); got != last {
		t.Fatalf("after releasing the group FlushableSCN = %d, want %d", got, last)
	}
	m.Stop()
	k.RunAll()
}

// A switch stalled on "checkpoint not complete" must not hold back the
// acknowledgment of records already written to the current group: flushed
// progress is per segment, not per drain.
func TestStalledSwitchStillAcknowledgesPlacedRecords(t *testing.T) {
	k, _, m := newTestLog(t, 4096, 2, false)
	m.groups[1].ckptDone = false
	m.Start()
	var early, last SCN
	earlyDone := false
	k.Go("w", func(p *sim.Proc) {
		early = m.Append(dataRec(1, 0, 100))
		for i := 1; i < 25; i++ {
			last = m.Append(dataRec(1, int64(i), 100))
		}
		if err := m.WaitFlushed(p, early); err != nil {
			t.Error(err)
			return
		}
		earlyDone = true
	})
	k.Run(sim.Time(5 * time.Second))
	if !earlyDone {
		t.Fatal("record in the current group never acknowledged while the switch stalled")
	}
	if m.FlushedSCN() >= last {
		t.Fatalf("flushed %d, want the backlog beyond the stalled switch (%d) unflushed", m.FlushedSCN(), last)
	}
	// Releasing the next group unblocks the switch and drains the rest.
	// (CheckpointCompleted only re-marks groups that hold records, so the
	// artificially-flagged empty group is released directly.)
	m.groups[1].ckptDone = true
	m.reusable.Broadcast(k)
	k.Go("w2", func(p *sim.Proc) {
		if err := m.WaitFlushed(p, last); err != nil {
			t.Error(err)
		}
	})
	k.Run(sim.Time(10 * time.Second))
	if m.FlushedSCN() != last {
		t.Fatalf("flushed %d after release, want %d", m.FlushedSCN(), last)
	}
	m.Stop()
	k.RunAll()
}
