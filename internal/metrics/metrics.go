// Package metrics provides the small time-series and summary helpers the
// benchmark reports are built from.
package metrics

import (
	"math"
	"sort"
	"time"

	"dbench/internal/sim"
)

// Point is one timestamped sample.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is an append-only sequence of timestamped samples.
type Series struct {
	points []Point
}

// Add appends a sample.
func (s *Series) Add(at sim.Time, v float64) {
	s.points = append(s.points, Point{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the samples (callers must not modify).
func (s *Series) Points() []Point { return s.points }

// CountBetween returns the number of samples with from <= At < to.
func (s *Series) CountBetween(from, to sim.Time) int {
	n := 0
	for _, pt := range s.points {
		if pt.At >= from && pt.At < to {
			n++
		}
	}
	return n
}

// RatePerMinute returns CountBetween scaled to events per minute.
func (s *Series) RatePerMinute(from, to sim.Time) float64 {
	d := to.Sub(from)
	if d <= 0 {
		return 0
	}
	return float64(s.CountBetween(from, to)) / d.Minutes()
}

// Buckets splits [from, to) into fixed-width windows and returns the
// event count in each (for throughput-over-time plots).
func (s *Series) Buckets(from, to sim.Time, width time.Duration) []int {
	if width <= 0 || to <= from {
		return nil
	}
	// ceil((to-from)/width): the last bucket may be partial, but when the
	// range divides evenly there is no empty trailing bucket (points with
	// pt.At >= to are excluded, so such a bucket could never fill).
	n := int((to.Sub(from) + width - 1) / width)
	out := make([]int, n)
	for _, pt := range s.points {
		if pt.At < from || pt.At >= to {
			continue
		}
		idx := int(pt.At.Sub(from) / width)
		if idx >= 0 && idx < n {
			out[idx]++
		}
	}
	return out
}

// FirstAfter returns the earliest sample time at or after t, or ok=false.
func (s *Series) FirstAfter(t sim.Time) (sim.Time, bool) {
	best := sim.Time(-1)
	for _, pt := range s.points {
		if pt.At >= t && (best < 0 || pt.At < best) {
			best = pt.At
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Summary holds order statistics of a sample set.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	StdDev float64
}

// Summarize computes order statistics over vals.
func Summarize(vals []float64) Summary {
	var s Summary
	s.Count = len(vals)
	if s.Count == 0 {
		return s
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(s.Count)
	s.Min = sorted[0]
	s.Max = sorted[s.Count-1]
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	// Two-pass (population) variance: the textbook one-pass form
	// sumSq/n − mean² cancels catastrophically when mean² dwarfs the
	// spread (e.g. latencies measured as large absolute timestamps).
	var sqDev float64
	for _, v := range sorted {
		d := v - s.Mean
		sqDev += d * d
	}
	if variance := sqDev / float64(s.Count); variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	return s
}

// percentile returns the q-th percentile of the sorted slice by the
// nearest-rank method: the ceil(q·n)-th smallest value, so P95 of 10
// samples is the 10th (not the 9th, as index truncation used to give).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
