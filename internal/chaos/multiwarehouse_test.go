package chaos

import "testing"

// Crash-point exploration at four warehouses: the partitioned schema,
// sharded buffer cache and striped lock table must keep every recovery
// invariant that holds at W=1. The golden fingerprints below are the
// determinism contract: they were measured once and pinned, so any change
// to the engine's deterministic execution at W=4 fails here loudly
// instead of surfacing later as a flaky campaign. If a deliberate
// behaviour change moves them, re-measure and update the table (the test
// logs the observed values).
func TestExploreFourWarehousesAllInvariants(t *testing.T) {
	golden := map[int64][4]uint64{
		1: {0x7d0c602d5eb4bd94, 0x1f23972079d271e7, 0xcfeac3a567e2c921, 0x74a67efd75627972},
		2: {0x50285be59d3f5dbb, 0xcbbc0f9b1083ba19, 0xd57bdcc81c2975c0, 0x8f96ab213befd93e},
	}
	for _, seed := range []int64{1, 2} {
		cfg := quickConfig()
		cfg.TPCC.Warehouses = 4
		cfg.Points = 4 // one per window
		cfg.Seed = seed
		rep, err := Explore(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AllGreen() {
			t.Fatalf("seed %d: %d/%d points violated an invariant at W=4:\n%s",
				seed, rep.Failed(), len(rep.Points), FormatReport(rep))
		}
		// All four crash windows must actually have been exercised.
		windows := make(map[Window]bool)
		for _, p := range rep.Points {
			windows[p.Window] = true
		}
		if len(windows) != windowCount {
			t.Errorf("seed %d: only %d/%d windows covered", seed, len(windows), windowCount)
		}
		for _, p := range rep.Points {
			t.Logf("seed %d point %d window %-10s fp %#x", seed, p.Index, p.Window, p.Fingerprint)
			if want := golden[seed][p.Index]; p.Fingerprint != want {
				t.Errorf("seed %d point %d (%s): fingerprint %#x, golden %#x",
					seed, p.Index, p.Window, p.Fingerprint, want)
			}
		}
	}
}
