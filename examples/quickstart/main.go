// Quickstart: start the simulated DBMS, run TPC-C for a few minutes,
// inject a SHUTDOWN ABORT operator fault, recover, and print the
// benchmark's three dependability measures (recovery time, lost
// transactions, integrity violations) next to the performance measure.
package main

import (
	"fmt"
	"log"
	"time"

	"dbench/internal/core"
	"dbench/internal/faults"
)

func main() {
	spec := core.DefaultSpec()
	spec.Name = "quickstart"
	spec.TPCC.Warehouses = 1
	spec.Duration = 5 * time.Minute
	spec.Fault = &faults.Fault{Kind: faults.ShutdownAbort}
	spec.InjectAt = 2 * time.Minute

	res, err := core.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dependability benchmark, one experiment:")
	fmt.Printf("  workload:            TPC-C, %d warehouse(s), %v\n", spec.TPCC.Warehouses, spec.Duration)
	fmt.Printf("  configuration:       %s\n", spec.Recovery.Name)
	fmt.Printf("  fault:               %v at t=%v\n", *spec.Fault, spec.InjectAt)
	fmt.Println()
	fmt.Printf("  tpmC:                %.0f\n", res.TpmC)
	fmt.Printf("  recovery time:       %v\n", res.RecoveryTime.Round(time.Millisecond))
	fmt.Printf("  end-user outage:     %v\n", res.UserOutage.Round(time.Millisecond))
	fmt.Printf("  lost transactions:   %d\n", res.LostTransactions)
	fmt.Printf("  integrity violations:%d\n", len(res.IntegrityViolations))
	fmt.Println()
	fmt.Println("  throughput per 30 s window (watch the dip at the fault):")
	fmt.Printf("  %v\n", res.Series)
}
