// Package trace is the simulator's structured, virtual-time event bus.
//
// Subsystems emit spans (Begin/End with parent linkage) and instant
// events into a Tracer; each event carries the sim.Time virtual clock, a
// category (lgwr, dbwr, ckpt, arch, recovery, txn, fault, chaos), and up
// to MaxAttrs key/value attributes. A Tracer fans events out to a Sink —
// an in-memory ring for tests, a Chrome trace_event JSON exporter for
// chrome://tracing / Perfetto, a recovery-timeline text report, or an
// FNV-1a hash used by the chaos harness as a determinism oracle.
//
// Two properties are load-bearing:
//
//   - Zero allocation when disabled. Every emit method is nil-safe and
//     returns before touching its arguments when the Tracer or its sink
//     is nil, and attribute slices are only copied element-wise, so the
//     variadic slice never escapes and callers pay nothing when tracing
//     is off (benchmarked in bench_test.go at the repo root).
//
//   - Determinism. Emitting never touches the simulation kernel (no
//     sleeps, no RNG, no wall clock), timestamps are the caller's
//     explicit sim.Time, and span IDs are a per-Tracer counter — so the
//     event stream of a seeded run is byte-identical across reruns.
//
// The package is single-goroutine by design, matching the simulation
// kernel's exactly-one-process-runs-at-a-time discipline: a Tracer (and
// its counters) must only be used from the goroutines of one kernel.
package trace

import "dbench/internal/sim"

// Category classifies an event by the subsystem that emitted it.
type Category uint8

const (
	CatEngine Category = iota + 1
	CatLGWR
	CatDBWR
	CatCkpt
	CatArch
	CatRecovery
	CatTxn
	CatFault
	CatChaos
	CatCtl
)

// Categories lists every category in declaration order.
var Categories = []Category{
	CatEngine, CatLGWR, CatDBWR, CatCkpt, CatArch,
	CatRecovery, CatTxn, CatFault, CatChaos, CatCtl,
}

func (c Category) String() string {
	switch c {
	case CatEngine:
		return "engine"
	case CatLGWR:
		return "lgwr"
	case CatDBWR:
		return "dbwr"
	case CatCkpt:
		return "ckpt"
	case CatArch:
		return "arch"
	case CatRecovery:
		return "recovery"
	case CatTxn:
		return "txn"
	case CatFault:
		return "fault"
	case CatChaos:
		return "chaos"
	case CatCtl:
		return "ctl"
	}
	return "unknown"
}

// Attr is one key/value attribute on an event: either an int64 or a
// string payload, chosen by IsStr. The flat struct (no interface{})
// keeps attribute passing allocation-free.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// I builds an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// S builds a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// Kind distinguishes complete spans from instant events.
type Kind uint8

const (
	KindSpan    Kind = iota + 1 // a closed Begin/End pair: Start + Dur
	KindInstant                 // a point event at Start
)

// MaxAttrs is the attribute capacity of one event; extras are dropped.
const MaxAttrs = 4

// SpanID identifies an open span. 0 is the zero/disabled ID: Begin on a
// disabled Tracer returns 0 and End(., 0) is a no-op, so callers never
// need to branch on whether tracing is on.
type SpanID uint64

// Event is one emitted record, passed to sinks by value. Spans are
// emitted once, at End time, already closed (Start + Dur) — sinks never
// pair begin/end markers.
type Event struct {
	Kind   Kind
	Cat    Category
	Name   string
	Track  string       // display track / Chrome thread (e.g. "LGWR")
	Start  sim.Time     // virtual timestamp (span start or instant time)
	Dur    sim.Duration // span duration; 0 for instants
	ID     SpanID       // span ID; 0 for instants
	Parent SpanID       // enclosing span, 0 if top-level
	NAttrs int
	Attrs  [MaxAttrs]Attr
}

// Sink receives completed events. Implementations must not retain
// pointers into the event (it is a value; retaining a copy is fine).
type Sink interface {
	Emit(ev Event)
}

// openSpan is the state held between Begin and End.
type openSpan struct {
	cat    Category
	name   string
	track  string
	start  sim.Time
	parent SpanID
	nattrs int
	attrs  [MaxAttrs]Attr
}

// Tracer is the event bus handle subsystems emit into. A nil *Tracer is
// a valid, permanently-disabled tracer; all methods are nil-safe.
type Tracer struct {
	sink   Sink
	nextID SpanID
	open   map[SpanID]openSpan
}

// New returns a Tracer emitting into sink. A nil sink yields a disabled
// (but non-nil) tracer.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, open: make(map[SpanID]openSpan)}
}

// Enabled reports whether emitted events reach a sink.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Instant emits a point event at virtual time `at`.
func (t *Tracer) Instant(at sim.Time, cat Category, track, name string, attrs ...Attr) {
	if t == nil || t.sink == nil {
		return
	}
	ev := Event{Kind: KindInstant, Cat: cat, Name: name, Track: track, Start: at}
	ev.NAttrs = copy(ev.Attrs[:], attrs)
	t.sink.Emit(ev)
}

// Begin opens a top-level span at virtual time `at` and returns its ID
// (0 when disabled).
func (t *Tracer) Begin(at sim.Time, cat Category, track, name string, attrs ...Attr) SpanID {
	return t.BeginChild(at, cat, track, name, 0, attrs...)
}

// BeginChild opens a span nested under parent. The span is emitted as a
// single complete event when End is called.
func (t *Tracer) BeginChild(at sim.Time, cat Category, track, name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil || t.sink == nil {
		return 0
	}
	t.nextID++
	id := t.nextID
	sp := openSpan{cat: cat, name: name, track: track, start: at, parent: parent}
	sp.nattrs = copy(sp.attrs[:], attrs)
	t.open[id] = sp
	return id
}

// End closes span id at virtual time `at`, appending any extra attrs to
// those given at Begin, and emits the complete span. Ending an unknown
// or zero ID is a no-op.
func (t *Tracer) End(at sim.Time, id SpanID, attrs ...Attr) {
	if t == nil || t.sink == nil || id == 0 {
		return
	}
	sp, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	ev := Event{
		Kind:  KindSpan,
		Cat:   sp.cat,
		Name:  sp.name,
		Track: sp.track,
		Start: sp.start,
		Dur:   at.Sub(sp.start),
		ID:    id, Parent: sp.parent,
		NAttrs: sp.nattrs,
		Attrs:  sp.attrs,
	}
	for _, a := range attrs {
		if ev.NAttrs >= MaxAttrs {
			break
		}
		ev.Attrs[ev.NAttrs] = a
		ev.NAttrs++
	}
	t.sink.Emit(ev)
}

// OpenSpans reports how many spans are begun but not yet ended (crashed
// processes may abandon spans; the count is bounded by instrumentation
// sites, not workload).
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// multiSink fans one event out to several sinks in order.
type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// MultiSink combines sinks into one; nil entries are dropped. With zero
// live sinks it returns nil (a disabled tracer), with one it returns
// that sink unwrapped.
func MultiSink(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
