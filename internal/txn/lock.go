// Package txn implements transactions: row-level two-phase locking, undo
// tracking for rollback, and the data access path that funnels every
// change through the redo log and the buffer cache (write-ahead logging).
package txn

import (
	"errors"
	"time"

	"dbench/internal/sim"
)

// ErrLockTimeout reports that a lock wait exceeded the configured timeout;
// callers abort and retry the transaction (this also resolves deadlocks).
var ErrLockTimeout = errors.New("txn: lock wait timeout")

// lockKey identifies one row lock.
type lockKey struct {
	table string
	key   int64
}

// heldLock records a granted lock together with the stripe it was granted
// in. The stripe is captured at acquire time: DDL can drop a table while a
// transaction still holds locks on it, and recomputing the stripe at
// release (via the then-missing catalog entry) would hand the release to
// the wrong stripe and leak the lock.
type heldLock struct {
	lk     lockKey
	stripe int
}

type lockWaiter struct {
	txn      *Txn
	proc     *sim.Proc
	granted  bool
	timeout  bool
	wakeCond *sim.Cond
}

type lockState struct {
	holder  *Txn
	waiters []*lockWaiter
}

// lockStripe is one independently managed slice of the lock namespace.
type lockStripe struct {
	locks map[lockKey]*lockState
}

// lockTable grants exclusive row locks in FIFO order with a wait timeout.
// The lock namespace is striped — by warehouse when the caller wires a
// partition-aware stripeOf — so hot tables at high warehouse counts do not
// funnel every grant and release through one map.
type lockTable struct {
	k       *sim.Kernel
	timeout time.Duration
	stripes []*lockStripe

	// stripeOf maps a row to its stripe; when nil everything lands in
	// stripe 0. The Manager wires it to the catalog's partition routing
	// so stripes align with warehouse partitions.
	stripeOf func(table string, key int64) int

	waits    int64
	timeouts int64
}

func newLockTable(k *sim.Kernel, timeout time.Duration, stripes int) *lockTable {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if stripes < 1 {
		stripes = 1
	}
	lt := &lockTable{k: k, timeout: timeout}
	for i := 0; i < stripes; i++ {
		lt.stripes = append(lt.stripes, &lockStripe{locks: make(map[lockKey]*lockState)})
	}
	return lt
}

// stripeFor returns the stripe index serving (table, key).
func (lt *lockTable) stripeFor(table string, key int64) int {
	if lt.stripeOf == nil || len(lt.stripes) == 1 {
		return 0
	}
	s := lt.stripeOf(table, key)
	if s < 0 {
		s = 0
	}
	return s % len(lt.stripes)
}

// acquire obtains the exclusive lock on (table, key) for t, blocking p
// until granted or timed out. Re-acquiring a held lock is a no-op.
func (lt *lockTable) acquire(p *sim.Proc, t *Txn, table string, key int64) error {
	lk := lockKey{table: table, key: key}
	sn := lt.stripeFor(table, key)
	stripe := lt.stripes[sn]
	st, ok := stripe.locks[lk]
	if !ok {
		st = &lockState{}
		stripe.locks[lk] = st
	}
	if st.holder == t {
		return nil
	}
	if st.holder == nil && len(st.waiters) == 0 {
		st.holder = t
		t.locks = append(t.locks, heldLock{lk: lk, stripe: sn})
		return nil
	}
	w := &lockWaiter{txn: t, proc: p}
	st.waiters = append(st.waiters, w)
	lt.waits++
	lt.k.After(lt.timeout, func() {
		if w.granted || w.timeout {
			return
		}
		w.timeout = true
		lt.k.After(0, w.wake)
	})
	for !w.granted && !w.timeout {
		w.block()
	}
	if w.timeout {
		lt.timeouts++
		// Remove ourselves from the queue.
		for i, q := range st.waiters {
			if q == w {
				st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
				break
			}
		}
		return ErrLockTimeout
	}
	if t.state != StateActive {
		// The transaction was abandoned (instance crash) while we were
		// waiting; pass the lock on and fail the operation.
		st.holder = nil
		lt.grantNext(st)
		return ErrTxnDone
	}
	t.locks = append(t.locks, heldLock{lk: lk, stripe: sn})
	return nil
}

// grantNext hands a free lock to the next live waiter.
func (lt *lockTable) grantNext(st *lockState) {
	for len(st.waiters) > 0 {
		w := st.waiters[0]
		st.waiters = st.waiters[1:]
		if w.timeout {
			continue
		}
		st.holder = w.txn
		w.granted = true
		lt.k.After(0, w.wake)
		return
	}
}

// block/wake adapt a waiter to the kernel's handoff protocol via a private
// condition: the waiter parks on its own proc.
func (w *lockWaiter) block() {
	var c sim.Cond
	w.wakeCond = &c
	c.Wait(w.proc)
}

func (w *lockWaiter) wake() {
	if w.wakeCond != nil {
		w.wakeCond.Broadcast(w.proc.Kernel())
		w.wakeCond = nil
	}
}

// releaseAll frees every lock held by t, handing each to its next waiter.
// Each release goes to the stripe recorded at acquire time.
func (lt *lockTable) releaseAll(t *Txn) {
	for _, hl := range t.locks {
		stripe := lt.stripes[hl.stripe]
		st, ok := stripe.locks[hl.lk]
		if !ok || st.holder != t {
			continue
		}
		st.holder = nil
		lt.grantNext(st)
		if st.holder == nil && len(st.waiters) == 0 {
			delete(stripe.locks, hl.lk)
		}
	}
	t.locks = nil
}

// held reports whether t holds the lock (used by tests).
func (lt *lockTable) held(t *Txn, table string, key int64) bool {
	stripe := lt.stripes[lt.stripeFor(table, key)]
	st, ok := stripe.locks[lockKey{table: table, key: key}]
	return ok && st.holder == t
}

// stripeLoads returns the number of live lock entries per stripe (used by
// tests to verify warehouse traffic actually spreads over stripes).
func (lt *lockTable) stripeLoads() []int {
	loads := make([]int, len(lt.stripes))
	for i, s := range lt.stripes {
		loads[i] = len(s.locks)
	}
	return loads
}
