package standby

import (
	"fmt"
	"testing"
	"time"

	"math/rand"

	"dbench/internal/engine"
	"dbench/internal/monitor"
	"dbench/internal/sim"
	"dbench/internal/tpcc"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"sync", ModeSync}, {"async", ModeAsync}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseMode("quorum"); err == nil {
		t.Fatal("unknown mode parsed")
	}
}

// TestClusterIntrospection drives a small sync cluster (two first-tier
// stand-bys, one cascade) through load, a simulated primary bounce
// (stream resync from the online logs), and a failover, checking the
// introspection surface the experiment runner and the chaos fingerprints
// consume: counters, V$REPLICATION rows, MMON probes, the stream hash,
// and the promoted-instance accessors.
func TestClusterIntrospection(t *testing.T) {
	k := sim.NewKernel(17)
	ecfg := engine.DefaultConfig()
	ecfg.Redo.GroupSizeBytes = 1 << 20
	ecfg.Redo.Groups = 3
	ecfg.Redo.ArchiveMode = true
	ecfg.CacheBlocks = 256
	ecfg.CheckpointTimeout = 60 * time.Second
	tcfg := tpcc.DefaultConfig()
	tcfg.Warehouses = 1
	tcfg.CustomersPerDistrict = 30
	tcfg.Items = 300

	pri, err := engine.New(k, machineFS(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	app := tpcc.NewApp(pri, tcfg)

	var runErr error
	k.Go("introspect", func(p *sim.Proc) {
		runErr = func() error {
			if err := pri.Open(p); err != nil {
				return err
			}
			if err := app.CreateSchema(p, []string{engine.DiskData1, engine.DiskData2}); err != nil {
				return err
			}
			if err := app.Load(p, rand.New(rand.NewSource(17))); err != nil {
				return err
			}
			if err := pri.Checkpoint(p); err != nil {
				return err
			}
			backupSCN := pri.DB().Control.CheckpointSCN
			if err := pri.ForceLogSwitch(p); err != nil {
				return err
			}
			sbs := make([]*Standby, 3)
			for i := range sbs {
				in, err := buildClone(p, k, ecfg, tcfg, 17, fmt.Sprintf("sb%d", i+1), 1)
				if err != nil {
					return err
				}
				sbs[i] = New(in, DefaultConfig(), backupSCN)
			}
			cluster, err := NewCluster(pri, sbs, ClusterConfig{Mode: ModeSync, Link: diffLink, Cascade: 1})
			if err != nil {
				return err
			}
			if err := cluster.Start(p); err != nil {
				return err
			}
			pri.Log().OnDurable = cluster.OnDurable
			pri.Txns().CommitGate = cluster.CommitGate
			pri.OnStateChange = cluster.OnPrimaryState

			repo := monitor.New(monitor.Config{})
			cluster.RegisterProbes(repo)

			put := func(key int64) error {
				tx, err := pri.Begin()
				if err != nil {
					return err
				}
				if err := pri.Insert(p, tx, tpcc.TableHistory, 1<<40+key, make([]byte, 64)); err != nil {
					return err
				}
				return pri.Commit(p, tx)
			}
			for i := int64(0); i < 50; i++ {
				if err := put(i); err != nil {
					return err
				}
			}
			repo.Sample(p.Now())

			if got := cluster.FirstTier(); got != 2 {
				return fmt.Errorf("first tier = %d, want 2", got)
			}
			if got := len(cluster.Links()); got != 3 {
				return fmt.Errorf("links = %d, want 3 (2 first-tier + 1 cascade)", got)
			}
			if got := len(cluster.Standbys()); got != 3 {
				return fmt.Errorf("standbys = %d, want 3", got)
			}
			frames, bytes, records, syncWaits, _, resyncs := cluster.Counters()
			if frames == 0 || bytes == 0 || records == 0 {
				return fmt.Errorf("stream counters empty: frames=%d bytes=%d records=%d", frames, bytes, records)
			}
			if syncWaits == 0 {
				return fmt.Errorf("sync mode recorded no commit waits")
			}
			if resyncs != 0 {
				return fmt.Errorf("resyncs = %d before any primary bounce", resyncs)
			}
			if cluster.StreamHash() == 0 {
				return fmt.Errorf("stream hash empty after traffic")
			}
			if cluster.ActiveInstance() != pri || cluster.Promoted() != nil || cluster.PromotedSCN() != 0 {
				return fmt.Errorf("cluster reports a failover before any crash")
			}
			rows := cluster.VReplication()
			if len(rows) != 3 {
				return fmt.Errorf("V$REPLICATION rows = %d, want 3", len(rows))
			}
			for i, r := range rows {
				wantMode := "sync"
				if i == 2 {
					wantMode = "casc"
				}
				if r.Mode != wantMode || r.Status != "APPLYING" || r.ReceivedSCN == 0 {
					return fmt.Errorf("row %d = %+v", i, r)
				}
			}
			sb := sbs[0]
			if sb.Name() != "sb1" {
				return fmt.Errorf("standby name = %q", sb.Name())
			}
			if sb.LastPrimarySCN() == 0 || sb.StreamHash() == 0 {
				return fmt.Errorf("stream watermarks empty: primary=%d hash=%d", sb.LastPrimarySCN(), sb.StreamHash())
			}
			_ = sb.QueueLen()
			last, ok := repo.Last()
			if !ok {
				return fmt.Errorf("no sample")
			}
			seen := map[string]bool{}
			for _, g := range last.Gauges {
				seen[g.Name] = true
			}
			for _, name := range []string{"repl.lag.records", "repl.rto.estimate.ms", "repl.link.stalls"} {
				if !seen[name] {
					return fmt.Errorf("probe %s missing from sample gauges %v", name, last.Gauges)
				}
			}

			// A primary bounce (instance recovery, not failover): the
			// streamers stop with the instance and resync from the online
			// logs when it reopens — no stand-by falls behind permanently.
			cluster.OnPrimaryState(p.Now(), engine.StateDown)
			cluster.OnPrimaryState(p.Now(), engine.StateOpen)
			if _, _, _, _, _, resyncs := cluster.Counters(); resyncs != 2 {
				return fmt.Errorf("resyncs = %d after bounce, want 2 (first tier)", resyncs)
			}
			for i := int64(50); i < 60; i++ {
				if err := put(i); err != nil {
					return err
				}
			}
			if !cluster.quorum(pri.Log().FlushedSCN()) {
				return fmt.Errorf("first tier not caught up after resync")
			}

			// Failover: the introspection flips to the promoted stand-by.
			pri.Crash()
			if _, err := cluster.Promote(p); err != nil {
				return err
			}
			if cluster.Promoted() == nil || cluster.ActiveInstance() != cluster.Promoted().Instance() {
				return fmt.Errorf("active instance did not follow the promotion")
			}
			if cluster.PromotedSCN() == 0 {
				return fmt.Errorf("promoted SCN empty")
			}
			if cluster.LastRTOEstimate() < 0 {
				return fmt.Errorf("negative RTO estimate")
			}
			status := map[string]int{}
			for _, r := range cluster.VReplication() {
				status[r.Status]++
			}
			if status["PRIMARY"] != 1 {
				return fmt.Errorf("V$REPLICATION statuses = %v, want exactly one PRIMARY", status)
			}
			return nil
		}()
	})
	k.Run(sim.Time(5 * time.Minute))
	if runErr != nil {
		t.Fatal(runErr)
	}
}
