package chaos

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"dbench/internal/engine"
	"dbench/internal/redo"
	"dbench/internal/sim"
	"dbench/internal/tpcc"
)

// This file holds the invariant checkers. Each is small and separable so
// the tests can attack it directly: construct a violation, assert the
// checker flags it.

// StateHash fingerprints the durable database state: every datafile's
// blocks — row contents, block SCNs, corruption flags — in a
// deterministic order (files sorted by name, rows by key). Replaying
// already-recovered redo must leave it unchanged (idempotence), and two
// runs from the same seed must produce the same value (determinism).
func StateHash(in *engine.Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, f := range in.DB().Datafiles() { // sorted by name
		h.Write([]byte(f.Name))
		writeInt(int64(f.CkptSCN))
		for no := 0; no < f.NumBlocks(); no++ {
			img := f.PeekBlock(no)
			writeInt(int64(no))
			writeInt(int64(img.SCN))
			if img.Corrupt {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
			keys := make([]int64, 0, len(img.Rows))
			for k := range img.Rows {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				writeInt(k)
				writeInt(int64(len(img.Rows[k])))
				h.Write(img.Rows[k])
			}
		}
	}
	return h.Sum64()
}

// captureRedo snapshots the redo stream instance recovery is about to
// replay: from the control file's recovery start position to the end of
// flushed redo, read from the online groups and, where those have been
// recycled, from the archived logs. This is harness bookkeeping (the
// crashed instance's durable bytes read without simulated cost), kept
// deliberately separate from recovery's own redoRange so the two
// implementations cross-check each other.
func captureRedo(in *engine.Instance) []redo.Record {
	ctl := in.DB().Control
	from := ctl.CheckpointSCN + 1
	if ctl.UndoSCN > 0 && ctl.UndoSCN < from {
		from = ctl.UndoSCN
	}
	log := in.Log()
	if recs, ok := log.OnlineRecords(from); ok {
		return append([]redo.Record(nil), recs...)
	}
	var recs []redo.Record
	next := from
	if arch := in.Archiver(); arch != nil {
		for _, al := range arch.Inventory().From(from) {
			for _, rec := range al.Records() {
				if rec.SCN >= next {
					recs = append(recs, rec)
					next = rec.SCN + 1
				}
			}
		}
	}
	online, _ := log.OnlineRecords(next)
	return append(recs, online...)
}

// missingFromLedger probes every acknowledged New-Order commit in the
// ledger and counts the ones whose order row is absent — lost
// transactions from the end-user's view. The instance must be open and
// the workload quiesced. A commit whose SCN lies beyond the non-negative
// cut (the failover's promotion SCN) is counted as beyond without
// probing: the promoted stand-by never received it, so it is the
// failover's RPO rather than a recovery defect — and probing would lie,
// because the post-failover workload reuses the lost order ids (the
// promoted district counters rolled back with the lost redo) and plants
// unrelated orders at the same keys. cut < 0 probes everything.
func missingFromLedger(p *sim.Proc, app *tpcc.App, ledger []tpcc.CommitRecord, cut redo.SCN) (missing, beyond int, err error) {
	for _, c := range ledger {
		if c.Type != tpcc.TxnNewOrder || c.OID == 0 {
			continue
		}
		if cut >= 0 && c.SCN > cut {
			beyond++
			continue
		}
		ok, err := app.HasOrder(p, c.W, c.D, c.OID)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			missing++
		}
	}
	return missing, beyond, nil
}

// sameOutcome decides the determinism verdict: two runs of the same
// crash point must agree on every observable — the final state hash and
// each per-point measure.
func sameOutcome(a, b *PointResult) bool {
	return a.Fingerprint == b.Fingerprint &&
		a.CrashAt == b.CrashAt &&
		a.CrashSCN == b.CrashSCN &&
		a.AckedCommits == b.AckedCommits &&
		a.RecoveryKind == b.RecoveryKind &&
		a.RecoveryTime == b.RecoveryTime &&
		a.RecordsApplied == b.RecordsApplied &&
		a.BytesReplayed == b.BytesReplayed &&
		a.MissingCommits == b.MissingCommits &&
		a.Violations == b.Violations &&
		a.ReappliedRecords == b.ReappliedRecords &&
		a.Offered == b.Offered &&
		a.Served == b.Served &&
		a.DarkCommits == b.DarkCommits &&
		a.TraceHash == b.TraceHash &&
		a.TraceEvents == b.TraceEvents &&
		a.MetricsHash == b.MetricsHash &&
		a.MetricSamples == b.MetricSamples &&
		a.EstimatedRedoReplay == b.EstimatedRedoReplay &&
		a.MeasuredRedoReplay == b.MeasuredRedoReplay &&
		a.FailedOver == b.FailedOver &&
		a.RPOLost == b.RPOLost &&
		a.DarkAcks == b.DarkAcks &&
		a.StreamHash == b.StreamHash &&
		a.ReplFrames == b.ReplFrames &&
		a.ReplBytes == b.ReplBytes &&
		a.ReplRecords == b.ReplRecords &&
		a.ReplSyncWaits == b.ReplSyncWaits &&
		a.ReplSyncLost == b.ReplSyncLost &&
		a.ReplResyncs == b.ReplResyncs
}

// fingerprint condenses a finished point — final datafile state plus
// every measure — into one value for the determinism comparison.
func fingerprint(in *engine.Instance, r *PointResult) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(StateHash(in)))
	writeInt(int64(r.CrashAt))
	writeInt(int64(r.CrashSCN))
	writeInt(int64(r.AckedCommits))
	writeInt(int64(r.RecoveryKind))
	writeInt(int64(r.RecoveryTime))
	writeInt(int64(r.RecordsApplied))
	writeInt(r.BytesReplayed)
	writeInt(int64(r.MissingCommits))
	writeInt(int64(r.Violations))
	writeInt(int64(r.ReappliedRecords))
	writeInt(int64(r.Offered))
	writeInt(int64(r.Served))
	writeInt(int64(r.DarkCommits))
	writeInt(int64(r.TraceHash))
	writeInt(int64(r.TraceEvents))
	writeInt(int64(r.MetricsHash))
	writeInt(int64(r.MetricSamples))
	writeInt(int64(r.EstimatedRedoReplay))
	writeInt(int64(r.MeasuredRedoReplay))
	// Replication measures join the fingerprint only on replicated points,
	// so unreplicated explorations keep their historical golden values.
	if r.ReplActive {
		if r.FailedOver {
			writeInt(1)
		} else {
			writeInt(0)
		}
		writeInt(int64(r.RPOLost))
		writeInt(int64(r.DarkAcks))
		writeInt(int64(r.StreamHash))
		writeInt(r.ReplFrames)
		writeInt(r.ReplBytes)
		writeInt(r.ReplRecords)
		writeInt(r.ReplSyncWaits)
		writeInt(r.ReplSyncLost)
		writeInt(r.ReplResyncs)
	}
	return h.Sum64()
}
