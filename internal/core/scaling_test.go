package core

import (
	"strings"
	"testing"
)

func TestScaleValidateRejectsEmptyWorkloads(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scale)
		want   string // substring of the error, "" = valid
	}{
		{"valid", func(sc *Scale) {}, ""},
		{"zero warehouses", func(sc *Scale) { sc.TPCC.Warehouses = 0 }, "Warehouses"},
		{"negative warehouses", func(sc *Scale) { sc.TPCC.Warehouses = -3 }, "Warehouses"},
		{"zero terminals", func(sc *Scale) { sc.TPCC.TerminalsPerWarehouse = 0 }, "Terminals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := miniScale()
			tc.mutate(&sc)
			err := sc.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid scale rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid scale accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// The campaigns must reject an empty workload up front rather than fold a
// column of zeros into a paper table.
func TestCampaignsRejectInvalidScale(t *testing.T) {
	sc := miniScale()
	sc.TPCC.TerminalsPerWarehouse = 0
	if _, err := RunTable3(sc, nil); err == nil {
		t.Error("RunTable3 accepted a terminal-less scale")
	}
	if _, err := RunScaling(sc, []int{1}, nil); err == nil {
		t.Error("RunScaling accepted a terminal-less scale")
	}
	if _, err := RunScaling(miniScale(), []int{1, 0}, nil); err == nil {
		t.Error("RunScaling accepted warehouses=0 in the sweep")
	}
}

// TestScalingSweepShape runs the W ∈ {1,2} sweep at mini scale and checks
// the properties the experiment exists to show: throughput grows with the
// warehouse count for both configurations, every cell measured a real
// recovery, and the rendered table is byte-identical when the same sweep
// runs on a different worker count (the determinism contract).
func TestScalingSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := miniScale()
	sc.Parallel = 0
	rows, err := RunScaling(sc, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, w := range []int{1, 2} {
		r := rows[i]
		if r.Warehouses != w {
			t.Errorf("row %d: warehouses %d, want %d", i, r.Warehouses, w)
		}
		if want := w * sc.TPCC.TerminalsPerWarehouse; r.Terminals != want {
			t.Errorf("W=%d: terminals %d, want %d", w, r.Terminals, want)
		}
		for _, cell := range []struct {
			name string
			c    ScalingCell
		}{{"base", r.Base}, {"tuned", r.Tuned}} {
			if cell.c.TpmC <= 0 {
				t.Errorf("W=%d %s: tpmC %.1f", w, cell.name, cell.c.TpmC)
			}
			if cell.c.RecoveryTime <= 0 {
				t.Errorf("W=%d %s: recovery time %v", w, cell.name, cell.c.RecoveryTime)
			}
		}
		// The tuned config buys throughput at every W (that trade-off is
		// the experiment's point).
		if r.Tuned.TpmC < r.Base.TpmC {
			t.Errorf("W=%d: tuned tpmC %.0f below baseline %.0f", w, r.Tuned.TpmC, r.Base.TpmC)
		}
	}
	// Monotone growth W=1 -> W=2 for both configurations.
	if rows[1].Base.TpmC <= rows[0].Base.TpmC {
		t.Errorf("baseline tpmC not monotone: W=1 %.0f, W=2 %.0f", rows[0].Base.TpmC, rows[1].Base.TpmC)
	}
	if rows[1].Tuned.TpmC <= rows[0].Tuned.TpmC {
		t.Errorf("tuned tpmC not monotone: W=1 %.0f, W=2 %.0f", rows[0].Tuned.TpmC, rows[1].Tuned.TpmC)
	}
	// Byte-identical across worker counts.
	sc2 := miniScale()
	sc2.Parallel = 2
	rows2, err := RunScaling(sc2, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if FormatScaling(rows) != FormatScaling(rows2) {
		t.Errorf("scaling table differs across -parallel:\n--- parallel 0\n%s--- parallel 2\n%s",
			FormatScaling(rows), FormatScaling(rows2))
	}
	t.Logf("\n%s", FormatScaling(rows))
}

// FormatScaling renders one aligned row per warehouse count.
func TestFormatScalingShape(t *testing.T) {
	rows := []ScalingRow{
		{Warehouses: 1, Terminals: 10, Base: ScalingCell{TpmC: 1234.5, RecoveryTime: 42e9, RedoMBps: 0.4},
			Tuned: ScalingCell{TpmC: 2345.6, RecoveryTime: 99e9, RedoMBps: 0.8}},
		{Warehouses: 8, Terminals: 80, Base: ScalingCell{TpmC: 9876.5, RecoveryTime: 44e9, RedoMBps: 3.1},
			Tuned: ScalingCell{TpmC: 19876.5, RecoveryTime: 180e9, RedoMBps: 6.4}},
	}
	out := FormatScaling(rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", out)
	}
	for _, want := range []string{ScalingBaselineConfig.Name, ScalingTunedConfig.Name, "1234", "19876"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var width int
	for _, l := range lines {
		if strings.TrimSpace(l) == "" || !strings.Contains(l, "|") {
			continue
		}
		if width == 0 {
			width = len(l)
		} else if len(l) != width {
			t.Errorf("ragged table line (%d vs %d): %q", len(l), width, l)
		}
	}
}
