package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"dbench/internal/backup"
	"dbench/internal/engine"
	"dbench/internal/recovery"
	"dbench/internal/sim"
	"dbench/internal/simdisk"
	"dbench/internal/tpcc"
)

// Crash-during-flashback: the logical rewind is itself a recovery
// procedure, so it gets the same treatment as crash recovery — kill the
// instance in the middle of FLASHBACK TABLE, run crash recovery, re-issue
// the flashback, and require convergence: the re-run must land on exactly
// the row set the uninterrupted flashback produces (which is the
// pre-fault row set), with all four standing invariants intact
// (durability, consistency, redo idempotence, determinism). The golden
// fingerprints pin the determinism contract per seed; if a deliberate
// engine change moves them, re-measure and update (the test logs the
// observed values).

// flashPoint is one crash-during-flashback scenario's outcome.
type flashPoint struct {
	// Interrupted reports the crash landed inside the flashback (the
	// first FLASHBACK TABLE returned an error).
	Interrupted bool
	// StockHash is the stock table's row-set hash after the re-issued
	// flashback; PreHash is the same hash taken before the fault.
	StockHash, PreHash uint64
	// RerunHash is the row-set hash after flashing back a second time on
	// the already-recovered table (idempotence).
	RerunHash uint64
	// ReappliedRecords and StateMoved are invariant (c): re-applying the
	// crash-captured redo after recovery must change nothing.
	ReappliedRecords int
	StateMoved       bool
	// MissingCommits / Violations are invariants (a) and (b).
	MissingCommits int
	Violations     int
	// Fingerprint condenses the final durable state and every measure
	// for the determinism comparison and the golden pin.
	Fingerprint uint64
}

// rowSetHash is an order-independent fingerprint of one table's logical
// row set.
func rowSetHash(p *sim.Proc, in *engine.Instance, table string) (uint64, error) {
	var sum uint64
	err := in.Scan(p, table, func(key int64, value []byte) bool {
		h := fnv.New64a()
		var kb [8]byte
		for i := range kb {
			kb[i] = byte(uint64(key) >> (8 * i))
		}
		h.Write(kb[:])
		h.Write(value)
		sum += h.Sum64()
		return true
	})
	return sum, err
}

// runFlashbackCrashPoint executes one seeded scenario end to end:
// workload, quiesce, truncate stock, crash `crashAfter` into the repairing
// flashback, crash-recover, re-issue the flashback twice, check.
func runFlashbackCrashPoint(seed int64, crashAfter time.Duration) (*flashPoint, error) {
	k := sim.NewKernel(seed)
	fs := simdisk.NewFS(
		simdisk.DefaultSpec(engine.DiskData1),
		simdisk.DefaultSpec(engine.DiskData2),
		simdisk.DefaultSpec(engine.DiskRedo),
		simdisk.DefaultSpec(engine.DiskArch),
	)
	ecfg := engine.DefaultConfig()
	ecfg.Redo.GroupSizeBytes = 1 << 20
	ecfg.Redo.Groups = 3
	ecfg.Redo.ArchiveMode = true
	ecfg.CacheBlocks = 256
	ecfg.CheckpointTimeout = 15 * time.Second
	in, err := engine.New(k, fs, ecfg)
	if err != nil {
		return nil, err
	}
	bk := backup.NewManager(k, fs, engine.DiskArch)
	rm := recovery.NewManager(in, bk)
	tcfg := tpcc.DefaultConfig()
	tcfg.Warehouses = 1
	tcfg.CustomersPerDistrict = 30
	tcfg.Items = 300
	tcfg.TerminalsPerWarehouse = 4
	app := tpcc.NewApp(in, tcfg)
	drv := tpcc.NewDriver(app, tpcc.DefaultDriverConfig())

	res := &flashPoint{}
	var runErr error
	k.Go("flash-chaos", func(p *sim.Proc) {
		runErr = func() error {
			if err := in.Open(p); err != nil {
				return err
			}
			if err := app.CreateSchema(p, []string{engine.DiskData1, engine.DiskData2}); err != nil {
				return err
			}
			if err := app.Load(p, rand.New(rand.NewSource(seed))); err != nil {
				return err
			}
			if err := in.Checkpoint(p); err != nil {
				return err
			}
			if _, err := bk.TakeFull(p, in.DB(), in.Catalog(), in.DB().Control.CheckpointSCN); err != nil {
				return err
			}
			if err := in.ForceLogSwitch(p); err != nil {
				return err
			}
			drv.Start()
			p.Sleep(10 * time.Second)
			drv.Quiesce(p)
			ledger := append([]tpcc.CommitRecord(nil), drv.Commits()...)

			res.PreHash, err = rowSetHash(p, in, tpcc.TableStock)
			if err != nil {
				return err
			}
			preSCN := in.Log().NextSCN() - 1
			if err := in.TruncateTable(p, tpcc.TableStock); err != nil {
				return err
			}

			// The crash, aimed into the running flashback.
			killer := k.Go("killer", func(sp *sim.Proc) {
				sp.Sleep(crashAfter)
				in.Crash()
			})
			_, ferr := rm.FlashbackTable(p, tpcc.TableStock, preSCN)
			res.Interrupted = ferr != nil
			killer.Kill()

			// Crash recovery, with the redo captured for invariant (c).
			replay := captureRedo(in)
			if _, err := rm.InstanceRecovery(p); err != nil {
				return fmt.Errorf("crash recovery: %w", err)
			}
			before := StateHash(in)
			res.ReappliedRecords = rm.ReapplyDataRecords(replay)
			res.StateMoved = StateHash(in) != before

			// Convergence: the re-issued flashback must complete and land
			// on the pre-fault row set; a second re-issue must not move it.
			if _, err := rm.FlashbackTable(p, tpcc.TableStock, preSCN); err != nil {
				return fmt.Errorf("flashback re-run: %w", err)
			}
			res.StockHash, err = rowSetHash(p, in, tpcc.TableStock)
			if err != nil {
				return err
			}
			if _, err := rm.FlashbackTable(p, tpcc.TableStock, preSCN); err != nil {
				return fmt.Errorf("flashback second re-run: %w", err)
			}
			res.RerunHash, err = rowSetHash(p, in, tpcc.TableStock)
			if err != nil {
				return err
			}

			// Invariants (a) and (b) on the converged database.
			res.MissingCommits, _, err = missingFromLedger(p, app, ledger, -1)
			if err != nil {
				return err
			}
			viols, err := app.CheckConsistency(p)
			if err != nil {
				return err
			}
			res.Violations = len(viols)
			k.Stop()
			return nil
		}()
	})
	k.Run(sim.Time(200 * time.Hour))
	k.KillAll()
	if runErr != nil {
		return nil, runErr
	}
	h := fnv.New64a()
	for _, v := range []uint64{StateHash(in), res.StockHash, res.PreHash, res.RerunHash,
		uint64(res.ReappliedRecords), uint64(res.MissingCommits), uint64(res.Violations)} {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	res.Fingerprint = h.Sum64()
	return res, nil
}

// TestCrashDuringFlashbackConverges is the chaos extension for the logical
// recovery path: a crash in the middle of FLASHBACK TABLE must leave the
// database recoverable, and re-issuing the flashback must converge to the
// pre-fault row set. Golden fingerprints pin per-seed determinism.
func TestCrashDuringFlashbackConverges(t *testing.T) {
	golden := map[int64]uint64{
		1: 0xa591ef8cc78f22f3,
		2: 0x5a99608536f7af60,
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const crashAfter = 100 * time.Millisecond
			res, err := runFlashbackCrashPoint(seed, crashAfter)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Interrupted {
				t.Errorf("crash at +%v did not interrupt the flashback; move the crash point", crashAfter)
			}
			// Flashback convergence and idempotence.
			if res.StockHash != res.PreHash {
				t.Errorf("re-issued flashback hash %#x != pre-fault hash %#x", res.StockHash, res.PreHash)
			}
			if res.RerunHash != res.StockHash {
				t.Errorf("second flashback re-run moved the row set: %#x -> %#x", res.StockHash, res.RerunHash)
			}
			// The four standing invariants.
			if res.MissingCommits != 0 {
				t.Errorf("durability: %d acked commits missing", res.MissingCommits)
			}
			if res.Violations != 0 {
				t.Errorf("consistency: %d violations", res.Violations)
			}
			if res.ReappliedRecords != 0 || res.StateMoved {
				t.Errorf("idempotence: %d records re-applied, state moved=%v", res.ReappliedRecords, res.StateMoved)
			}
			res2, err := runFlashbackCrashPoint(seed, crashAfter)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Fingerprint != res.Fingerprint {
				t.Errorf("determinism: reruns disagree: %#x vs %#x", res.Fingerprint, res2.Fingerprint)
			}
			t.Logf("seed %d fp %#x", seed, res.Fingerprint)
			if want := golden[seed]; res.Fingerprint != want {
				t.Errorf("fingerprint %#x, golden %#x (re-pin if the change is deliberate)", res.Fingerprint, want)
			}
		})
	}
}
