package core

import (
	"fmt"
	"time"

	"dbench/internal/faults"
)

// ---------------------------------------------------------------------
// Scaling experiment (-exp scale): throughput and crash-recovery time as
// the database and traffic grow with the warehouse count. The paper
// measures one warehouse; this experiment extends its Table 3 / Figure 4
// axes along W, comparing the paper's baseline configuration against the
// perf-tuned one so the performance/recovery trade-off is visible at
// every scale.

// ScalingBaselineConfig and ScalingTunedConfig are the two recovery
// configurations compared at every warehouse count: the paper's default
// installation and its largest-log, laziest-checkpoint tuning (the best
// performer / worst recoverer of Table 3).
var (
	ScalingBaselineConfig = mustConfig("F100G3T10")
	ScalingTunedConfig    = mustConfig("F400G3T20")
)

// DefaultScalingWarehouses is the -exp scale default sweep.
var DefaultScalingWarehouses = []int{1, 2, 4, 8}

// ScalingCell is one configuration's measures at one warehouse count.
type ScalingCell struct {
	TpmC         float64
	RecoveryTime time.Duration
	RedoMBps     float64
}

// ScalingRow is one warehouse count: both configurations side by side.
type ScalingRow struct {
	Warehouses int
	Terminals  int
	Base       ScalingCell
	Tuned      ScalingCell
}

// scalingSpec builds one spec of the sweep. The simulated platform grows
// with the warehouse count — CPU slots and data disks scale with W and
// the buffer cache keeps its per-warehouse share — so the sweep measures
// the scaled system, not one starved box.
func scalingSpec(sc Scale, cfg RecoveryConfig, w int, fault bool) Spec {
	kind := "perf"
	if fault {
		kind = "rec"
	}
	spec := sc.spec(fmt.Sprintf("SC/W%d/%s/%s", w, cfg.Name, kind), cfg)
	spec.TPCC.Warehouses = w
	spec.CacheBlocks = sc.CacheBlocks * w
	spec.CPUs = w
	spec.DataDisks = w
	if spec.DataDisks > 8 {
		spec.DataDisks = 8
	}
	if fault {
		spec.Fault = &faults.Fault{Kind: faults.ShutdownAbort}
		spec.InjectAt = sc.InjectTimes[1] // at full throughput
		spec.TailAfterRecovery = sc.Tail
	}
	return spec
}

// RunScaling measures the scaling sweep: for every warehouse count, a
// fault-free run and a shutdown-abort run per configuration (four runs
// per W). Results are identical for every Parallel setting.
func RunScaling(sc Scale, warehouses []int, progress Progress) ([]ScalingRow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(warehouses) == 0 {
		warehouses = DefaultScalingWarehouses
	}
	for _, w := range warehouses {
		if w < 1 {
			return nil, fmt.Errorf("core: scaling needs warehouses >= 1 (got %d)", w)
		}
	}
	// Four jobs per W, in this fixed order.
	kinds := [4]string{"base/perf", "base/rec", "tuned/perf", "tuned/rec"}
	specs := make([]Spec, 0, 4*len(warehouses))
	for _, w := range warehouses {
		specs = append(specs,
			scalingSpec(sc, ScalingBaselineConfig, w, false),
			scalingSpec(sc, ScalingBaselineConfig, w, true),
			scalingSpec(sc, ScalingTunedConfig, w, false),
			scalingSpec(sc, ScalingTunedConfig, w, true),
		)
	}
	// Trace the first recovery run (not the first run): the recovery
	// timeline is what a -trace/-timeline user of this experiment wants.
	sc.traceFirst(specs[1:])
	results, err := runPool(specs, sc.Parallel, progress, func(i int, res *Result) string {
		if i%2 == 1 {
			return fmt.Sprintf("SC W=%-2d %-10s recovery=%v", warehouses[i/4], kinds[i%4], res.RecoveryTime.Round(time.Second))
		}
		return fmt.Sprintf("SC W=%-2d %-10s tpmC=%5.0f", warehouses[i/4], kinds[i%4], res.TpmC)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ScalingRow, len(warehouses))
	for i, w := range warehouses {
		r := results[4*i : 4*i+4]
		cell := func(perf, rec *Result) ScalingCell {
			return ScalingCell{
				TpmC:         perf.TpmC,
				RecoveryTime: rec.RecoveryTime,
				RedoMBps:     float64(perf.RedoWritten) / (1 << 20) / sc.Duration.Seconds(),
			}
		}
		rows[i] = ScalingRow{
			Warehouses: w,
			Terminals:  w * sc.TPCC.TerminalsPerWarehouse,
			Base:       cell(r[0], r[1]),
			Tuned:      cell(r[2], r[3]),
		}
	}
	return rows, nil
}
