package engine

import (
	"fmt"

	"dbench/internal/sim"
	"dbench/internal/storage"
	"dbench/internal/txn"
)

// The DML surface: thin wrappers over the transaction manager that check
// the instance is open, so clients observe outages as ErrInstanceDown
// (their "connection" drops) rather than touching a dead instance.

// Begin starts a transaction.
func (in *Instance) Begin() (*txn.Txn, error) {
	if in.state != StateOpen {
		return nil, ErrInstanceDown
	}
	return in.tm.Begin(), nil
}

// Read returns a row's value without locking.
func (in *Instance) Read(p *sim.Proc, t *txn.Txn, table string, key int64) ([]byte, error) {
	if in.state != StateOpen {
		return nil, ErrInstanceDown
	}
	return in.tm.Read(p, t, table, key)
}

// ReadForUpdate locks the row and returns its value.
func (in *Instance) ReadForUpdate(p *sim.Proc, t *txn.Txn, table string, key int64) ([]byte, error) {
	if in.state != StateOpen {
		return nil, ErrInstanceDown
	}
	return in.tm.ReadForUpdate(p, t, table, key)
}

// Insert adds a row.
func (in *Instance) Insert(p *sim.Proc, t *txn.Txn, table string, key int64, value []byte) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.tm.Insert(p, t, table, key, value)
}

// Update replaces a row.
func (in *Instance) Update(p *sim.Proc, t *txn.Txn, table string, key int64, value []byte) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.tm.Update(p, t, table, key, value)
}

// Delete removes a row.
func (in *Instance) Delete(p *sim.Proc, t *txn.Txn, table string, key int64) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.tm.Delete(p, t, table, key)
}

// Commit makes the transaction durable.
func (in *Instance) Commit(p *sim.Proc, t *txn.Txn) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.tm.Commit(p, t)
}

// Rollback undoes the transaction.
func (in *Instance) Rollback(p *sim.Proc, t *txn.Txn) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.tm.Rollback(p, t)
}

// Scan iterates all rows of a table (see txn.Manager.Scan).
func (in *Instance) Scan(p *sim.Proc, table string, fn func(key int64, value []byte) bool) error {
	if in.state != StateOpen {
		return ErrInstanceDown
	}
	return in.tm.Scan(p, table, fn)
}

// DirectLoad bulk-loads rows into a table bypassing the cache and the redo
// log (like a direct-path load): rows are grouped per block and written
// straight to the durable images. Used to populate the TPC-C database
// before the measured run; callers should checkpoint and back up after.
func (in *Instance) DirectLoad(p *sim.Proc, table string, rows map[int64][]byte) error {
	tbl, err := in.cat.Table(table)
	if err != nil {
		return err
	}
	blocks := tbl.Blocks()
	blockIdx := make(map[storage.BlockRef]int, len(blocks))
	for i, ref := range blocks {
		blockIdx[ref] = i
	}
	byBlock := make(map[int][]int64)
	for key := range rows {
		byBlock[blockIdx[tbl.BlockFor(key)]] = append(byBlock[blockIdx[tbl.BlockFor(key)]], key)
	}
	// Deterministic order over blocks.
	for no := range blocks {
		keys, ok := byBlock[no]
		if !ok {
			continue
		}
		ref := blocks[no]
		img, err := ref.File.ReadBlock(p, ref.No)
		if err != nil {
			return fmt.Errorf("engine: direct load: %w", err)
		}
		for _, key := range keys {
			img.Rows[key] = append([]byte(nil), rows[key]...)
		}
		if err := ref.File.WriteBlock(p, ref.No, img); err != nil {
			return fmt.Errorf("engine: direct load: %w", err)
		}
	}
	return nil
}
