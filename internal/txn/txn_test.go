package txn

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dbench/internal/bufcache"
	"dbench/internal/catalog"
	"dbench/internal/redo"
	"dbench/internal/sim"
	"dbench/internal/simdisk"
	"dbench/internal/storage"
)

type fixture struct {
	k   *sim.Kernel
	fs  *simdisk.FS
	db  *storage.DB
	cat *catalog.Catalog
	log *redo.Manager
	c   *bufcache.Cache
	m   *Manager
}

func makeFixture() (*fixture, error) {
	k := sim.NewKernel(1)
	fs := simdisk.NewFS(simdisk.DefaultSpec("data"), simdisk.DefaultSpec("redo"))
	db, err := storage.NewDB(fs, "data")
	if err != nil {
		return nil, err
	}
	ts, err := db.CreateTablespace("USERS", []string{"data"}, 32)
	if err != nil {
		return nil, err
	}
	cat := catalog.New()
	if _, err := cat.CreateTable("acct", "bank", ts, 8); err != nil {
		return nil, err
	}
	log, err := redo.NewManager(k, fs, redo.Config{GroupSizeBytes: 4 << 20, Groups: 3, Disk: "redo"})
	if err != nil {
		return nil, err
	}
	log.OnSwitch = func(p *sim.Proc, old *redo.Group) { log.CheckpointCompleted(old.LastSCN()) }
	log.Start()
	cache := bufcache.New(k, 64)
	m := NewManager(k, log, cache, cat, nil, Config{LockTimeout: 2 * time.Second})
	return &fixture{k: k, fs: fs, db: db, cat: cat, log: log, c: cache, m: m}, nil
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f, err := makeFixture()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) run(fn func(p *sim.Proc)) {
	f.k.Go("t", fn)
	f.k.Run(sim.Time(time.Hour))
}

func (f *fixture) shutdown() {
	f.log.Stop()
	f.k.RunAll()
}

func TestInsertCommitRead(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		if err := f.m.Insert(p, tx, "acct", 1, []byte("100")); err != nil {
			t.Error(err)
			return
		}
		if err := f.m.Commit(p, tx); err != nil {
			t.Error(err)
			return
		}
		if tx.State() != StateCommitted || tx.CommitSCN == 0 {
			t.Errorf("state=%v commitSCN=%d", tx.State(), tx.CommitSCN)
		}
		tx2 := f.m.Begin()
		v, err := f.m.Read(p, tx2, "acct", 1)
		if err != nil {
			t.Error(err)
			return
		}
		if string(v) != "100" {
			t.Errorf("read %q", v)
		}
		_ = f.m.Commit(p, tx2)
	})
}

func TestInsertDuplicateFails(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("a"))
		if err := f.m.Insert(p, tx, "acct", 1, []byte("b")); !errors.Is(err, ErrRowExists) {
			t.Errorf("err = %v, want ErrRowExists", err)
		}
		if err := f.m.Update(p, tx, "acct", 99, []byte("x")); !errors.Is(err, ErrRowNotFound) {
			t.Errorf("update missing err = %v", err)
		}
		if err := f.m.Delete(p, tx, "acct", 99); !errors.Is(err, ErrRowNotFound) {
			t.Errorf("delete missing err = %v", err)
		}
		_ = f.m.Commit(p, tx)
	})
}

func TestRollbackRestoresAllChanges(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		setup := f.m.Begin()
		_ = f.m.Insert(p, setup, "acct", 1, []byte("orig"))
		_ = f.m.Insert(p, setup, "acct", 2, []byte("victim"))
		_ = f.m.Commit(p, setup)

		tx := f.m.Begin()
		_ = f.m.Update(p, tx, "acct", 1, []byte("changed"))
		_ = f.m.Delete(p, tx, "acct", 2)
		_ = f.m.Insert(p, tx, "acct", 3, []byte("new"))
		if err := f.m.Rollback(p, tx); err != nil {
			t.Error(err)
			return
		}
		check := f.m.Begin()
		if v, _ := f.m.Read(p, check, "acct", 1); string(v) != "orig" {
			t.Errorf("key1 = %q", v)
		}
		if v, _ := f.m.Read(p, check, "acct", 2); string(v) != "victim" {
			t.Errorf("key2 = %q", v)
		}
		if _, err := f.m.Read(p, check, "acct", 3); !errors.Is(err, ErrRowNotFound) {
			t.Errorf("key3 err = %v, want not found", err)
		}
		_ = f.m.Commit(p, check)
	})
	if f.m.Stats().Aborted != 1 {
		t.Fatalf("aborted = %d", f.m.Stats().Aborted)
	}
}

func TestLockBlocksSecondWriter(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	var order []string
	f.k.Go("t1", func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("t1"))
		p.Sleep(500 * time.Millisecond) // hold the lock a while
		order = append(order, "t1-commit")
		_ = f.m.Commit(p, tx)
	})
	f.k.Go("t2", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // ensure t1 got the lock
		tx := f.m.Begin()
		if _, err := f.m.ReadForUpdate(p, tx, "acct", 1); err != nil {
			// value exists by the time we acquire the lock
			t.Errorf("ReadForUpdate: %v", err)
		}
		order = append(order, "t2-locked")
		_ = f.m.Commit(p, tx)
	})
	f.k.Run(sim.Time(time.Hour))
	if len(order) != 2 || order[0] != "t1-commit" || order[1] != "t2-locked" {
		t.Fatalf("order = %v", order)
	}
	if f.m.Stats().LockWaits != 1 {
		t.Fatalf("lock waits = %d", f.m.Stats().LockWaits)
	}
}

func TestLockTimeoutBreaksDeadlock(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	var timeouts int
	deadlocker := func(first, second int64) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			tx := f.m.Begin()
			if err := f.m.Insert(p, tx, "acct", first, []byte("x")); err != nil {
				_ = f.m.Rollback(p, tx)
				return
			}
			p.Sleep(10 * time.Millisecond)
			err := f.m.Insert(p, tx, "acct", second, []byte("y"))
			if errors.Is(err, ErrLockTimeout) {
				timeouts++
				_ = f.m.Rollback(p, tx)
				return
			}
			_ = f.m.Commit(p, tx)
		}
	}
	f.k.Go("a", deadlocker(1, 2))
	f.k.Go("b", deadlocker(2, 1))
	f.k.Run(sim.Time(time.Hour))
	if timeouts == 0 {
		t.Fatal("deadlock was not broken by timeout")
	}
	if f.m.ActiveCount() != 0 {
		t.Fatalf("active = %d", f.m.ActiveCount())
	}
}

func TestReacquireOwnLockIsNoop(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("a"))
		if err := f.m.Update(p, tx, "acct", 1, []byte("b")); err != nil {
			t.Errorf("update own row: %v", err)
		}
		if _, err := f.m.ReadForUpdate(p, tx, "acct", 1); err != nil {
			t.Errorf("read for update own row: %v", err)
		}
		_ = f.m.Commit(p, tx)
	})
}

func TestCommitIsDurableWAL(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("v"))
		if f.log.FlushedSCN() != 0 {
			t.Error("log flushed before commit without need")
		}
		_ = f.m.Commit(p, tx)
		if f.log.FlushedSCN() < 2 {
			t.Errorf("flushedSCN = %d after commit", f.log.FlushedSCN())
		}
		// The redo stream contains insert + commit.
		recs, ok := f.log.OnlineRecords(1)
		if !ok || len(recs) != 2 {
			t.Errorf("records = %d (ok=%v)", len(recs), ok)
			return
		}
		if recs[0].Op != redo.OpInsert || recs[1].Op != redo.OpCommit {
			t.Errorf("ops = %v,%v", recs[0].Op, recs[1].Op)
		}
	})
}

func TestOpsOnFinishedTxnFail(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("v"))
		_ = f.m.Commit(p, tx)
		if err := f.m.Insert(p, tx, "acct", 2, []byte("w")); !errors.Is(err, ErrTxnDone) {
			t.Errorf("insert err = %v", err)
		}
		if err := f.m.Commit(p, tx); !errors.Is(err, ErrTxnDone) {
			t.Errorf("commit err = %v", err)
		}
		if err := f.m.Rollback(p, tx); !errors.Is(err, ErrTxnDone) {
			t.Errorf("rollback err = %v", err)
		}
		if _, err := f.m.Read(p, tx, "acct", 1); !errors.Is(err, ErrTxnDone) {
			t.Errorf("read err = %v", err)
		}
	})
}

func TestAbandonAllReleasesLocks(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("v"))
		f.m.AbandonAll()
		if f.m.ActiveCount() != 0 {
			t.Errorf("active = %d", f.m.ActiveCount())
		}
		tx2 := f.m.Begin()
		if _, err := f.m.ReadForUpdate(p, tx2, "acct", 1); err != nil {
			t.Errorf("lock still held after abandon: %v", err)
		}
		_ = f.m.Commit(p, tx2)
	})
}

func TestScanSeesCommittedRows(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		for i := int64(0); i < 20; i++ {
			_ = f.m.Insert(p, tx, "acct", i, []byte{byte(i)})
		}
		_ = f.m.Commit(p, tx)
		got := map[int64]byte{}
		if err := f.m.Scan(p, "acct", func(k int64, v []byte) bool {
			got[k] = v[0]
			return true
		}); err != nil {
			t.Error(err)
			return
		}
		if len(got) != 20 {
			t.Errorf("scanned %d rows", len(got))
		}
		for i := int64(0); i < 20; i++ {
			if got[i] != byte(i) {
				t.Errorf("row %d = %d", i, got[i])
			}
		}
	})
}

func TestScanEarlyStop(t *testing.T) {
	f := newFixture(t)
	defer f.shutdown()
	f.run(func(p *sim.Proc) {
		tx := f.m.Begin()
		for i := int64(0); i < 10; i++ {
			_ = f.m.Insert(p, tx, "acct", i, []byte{1})
		}
		_ = f.m.Commit(p, tx)
		n := 0
		_ = f.m.Scan(p, "acct", func(k int64, v []byte) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Errorf("visited %d, want 3", n)
		}
	})
}

func TestCommitFailsWhenLogDown(t *testing.T) {
	f := newFixture(t)
	var commitErr error
	f.k.Go("t", func(p *sim.Proc) {
		tx := f.m.Begin()
		_ = f.m.Insert(p, tx, "acct", 1, []byte("v"))
		f.log.Stop()
		commitErr = f.m.Commit(p, tx)
	})
	f.k.RunAll()
	if commitErr == nil {
		t.Fatal("commit succeeded with log down")
	}
}

// Property: a random interleaving of commits and rollbacks leaves exactly
// the committed values visible.
func TestQuickCommitRollbackVisibility(t *testing.T) {
	prop := func(commitMask uint32) bool {
		f, err := makeFixture()
		if err != nil {
			return false
		}
		defer f.shutdown()
		want := map[int64]bool{}
		ok := true
		f.k.Go("t", func(p *sim.Proc) {
			for i := int64(0); i < 16; i++ {
				tx := f.m.Begin()
				if err := f.m.Insert(p, tx, "acct", i, []byte{byte(i)}); err != nil {
					ok = false
					return
				}
				if commitMask&(1<<uint(i)) != 0 {
					if err := f.m.Commit(p, tx); err != nil {
						ok = false
					}
					want[i] = true
				} else {
					if err := f.m.Rollback(p, tx); err != nil {
						ok = false
					}
				}
			}
			check := f.m.Begin()
			for i := int64(0); i < 16; i++ {
				_, err := f.m.Read(p, check, "acct", i)
				if want[i] && err != nil {
					ok = false
				}
				if !want[i] && !errors.Is(err, ErrRowNotFound) {
					ok = false
				}
			}
			_ = f.m.Commit(p, check)
		})
		f.k.Run(sim.Time(time.Hour))
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
